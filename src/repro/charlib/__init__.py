"""SPICE-characterized delay/slew library (Chapter 3 of the paper).

The library pre-characterizes two component shapes with the mini-SPICE
substrate and fits polynomial response surfaces, exactly as the paper does
with HSPICE + MATLAB surface fitting:

- **single-wire** components (driving buffer -> wire -> load buffer):
  buffer intrinsic delay, wire delay and wire output slew as 3rd/4th-order
  polynomial surfaces of (input slew, wire length), one set per
  (driving buffer type, load buffer type) combination;
- **branch** components (driving buffer -> stem -> two branches):
  hyperplane (multi-variable polynomial) fits over (input slew, stem
  length, branch lengths, branch load caps), one set per driving buffer.

Realistic *curved* input waveforms are produced the same way as the
paper's Fig. 3.3 setup: an ideal ramp drives an input-shaping buffer
through an adjustable wire, and the resulting buffer-output waveform
drives the component under test.
"""

from repro.charlib.fitting import PolynomialFit, FitQuality
from repro.charlib.library import (
    DelaySlewLibrary,
    SingleWireTiming,
    BranchTiming,
)
from repro.charlib.sweep import (
    CharConfig,
    InputShaper,
    characterize_single_wire,
    characterize_branch,
)
from repro.charlib.build import build_library, load_default_library, default_library_path

__all__ = [
    "PolynomialFit",
    "FitQuality",
    "DelaySlewLibrary",
    "SingleWireTiming",
    "BranchTiming",
    "CharConfig",
    "InputShaper",
    "characterize_single_wire",
    "characterize_branch",
    "build_library",
    "load_default_library",
    "default_library_path",
]
