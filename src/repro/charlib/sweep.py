"""Characterization sweeps on the mini-SPICE substrate.

Reproduces the paper's measurement setup (Figs. 3.3 and 3.5): an ideal
ramp drives an input-shaping buffer ``Binput`` through a wire of length
``Linput``; the resulting *curved* buffer-output waveform is what actually
stimulates the component under test. Sweeping ``Linput`` produces the
range of realistic input slews.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spice.stages import branch_spec, simulate_stage, single_wire_spec
from repro.tech.buffers import BufferType
from repro.tech.technology import Technology
from repro.timing.waveform import Waveform, ramp_waveform


@dataclass
class CharConfig:
    """Sweep/accuracy knobs for library characterization."""

    dt: float = 1.0e-12  # simulation timestep
    source_slew: float = 60.0e-12  # ideal ramp driving Binput
    linput_values: tuple[float, ...] = (0.0, 400.0, 1000.0, 1800.0, 2800.0, 4200.0)
    length_values: tuple[float, ...] = (
        50.0,
        300.0,
        700.0,
        1200.0,
        1800.0,
        2500.0,
        3200.0,
        4000.0,
        5000.0,
    )
    # Branch sampling (per driving buffer type).
    branch_samples: int = 170
    branch_stem_range: tuple[float, float] = (0.0, 2000.0)
    branch_length_range: tuple[float, float] = (50.0, 3200.0)
    # Branch loads cover buffer input caps, sink caps, and the collapsed
    # caps of small unbuffered merges (bounded by the stage-cap rule).
    branch_cap_range: tuple[float, float] = (3.0e-15, 24.0e-15)
    branch_linput_range: tuple[float, float] = (0.0, 4200.0)
    seed: int = 20100613  # DAC 2010 conference date
    single_degree: int = 4  # paper: 3rd/4th-order surfaces
    branch_degree: int = 2  # paper: hyperplane fits in higher dimensions


@dataclass
class SingleWireSample:
    """One measured point of a single-wire component."""

    input_slew: float
    length: float
    buffer_delay: float  # 50% Bdrive input -> 50% Bdrive output
    wire_delay: float  # 50% Bdrive output -> 50% load input
    wire_slew: float  # 10-90 at the load input


@dataclass
class BranchSample:
    """One measured point of a branch component."""

    input_slew: float
    stem_length: float
    left_length: float
    right_length: float
    left_cap: float
    right_cap: float
    buffer_delay: float
    left_delay: float  # 50% Bdrive output -> 50% left endpoint
    right_delay: float
    left_slew: float
    right_slew: float


class InputShaper:
    """Produces realistic curved input waveforms (the paper's Binput).

    The waveform at the component input for a given ``Linput`` is computed
    once and cached; the measured input slew is cached with it.
    """

    def __init__(self, tech: Technology, binput: BufferType, config: CharConfig):
        self.tech = tech
        self.binput = binput
        self.config = config
        self._cache: dict[tuple[float, float], tuple[Waveform, float]] = {}

    def shaped_input(self, linput: float, load_cap: float) -> tuple[Waveform, float]:
        """Waveform (and its measured slew) after Binput + Linput wire."""
        key = (round(linput, 3), round(load_cap * 1e18, 3))
        if key not in self._cache:
            source = ramp_waveform(
                self.tech.vdd, self.config.source_slew, t_start=50.0e-12
            )
            spec = single_wire_spec(self.binput, linput, load_cap)
            sim = simulate_stage(self.tech, spec, source, dt=self.config.dt)
            wave = sim.trimmed_waveform(1)
            slew = sim.slew_at(1)
            self._cache[key] = (wave, slew)
        return self._cache[key]


def characterize_single_wire(
    tech: Technology,
    drive: BufferType,
    load: BufferType,
    config: CharConfig,
    shaper: InputShaper | None = None,
) -> list[SingleWireSample]:
    """Sweep (Linput, L) for one (drive, load) combination (Fig. 3.3)."""
    shaper = shaper or InputShaper(tech, drive, config)
    load_cap = load.input_cap(tech)
    samples = []
    for linput in config.linput_values:
        wave, slew_in = shaper.shaped_input(linput, drive.input_cap(tech))
        for length in config.length_values:
            spec = single_wire_spec(drive, length, load_cap)
            sim = simulate_stage(tech, spec, wave, dt=config.dt)
            buffer_delay = sim.buffer_delay()
            samples.append(
                SingleWireSample(
                    input_slew=slew_in,
                    length=length,
                    buffer_delay=buffer_delay,
                    wire_delay=sim.delay_to(1) - buffer_delay,
                    wire_slew=sim.slew_at(1),
                )
            )
    return samples


def characterize_branch(
    tech: Technology,
    drive: BufferType,
    config: CharConfig,
    shaper: InputShaper | None = None,
    rng: np.random.Generator | None = None,
) -> list[BranchSample]:
    """Random-sample branch components for one driving buffer (Fig. 3.5)."""
    shaper = shaper or InputShaper(tech, drive, config)
    rng = rng or np.random.default_rng(config.seed)
    samples = []
    for _ in range(config.branch_samples):
        linput = rng.uniform(*config.branch_linput_range)
        stem = rng.uniform(*config.branch_stem_range)
        left = rng.uniform(*config.branch_length_range)
        right = rng.uniform(*config.branch_length_range)
        cap_l = rng.uniform(*config.branch_cap_range)
        cap_r = rng.uniform(*config.branch_cap_range)
        wave, slew_in = shaper.shaped_input(linput, drive.input_cap(tech))
        spec = branch_spec(drive, left, right, cap_l, cap_r, stem_length=stem)
        sim = simulate_stage(tech, spec, wave, dt=config.dt)
        buffer_delay = sim.buffer_delay()
        samples.append(
            BranchSample(
                input_slew=slew_in,
                stem_length=stem,
                left_length=left,
                right_length=right,
                left_cap=cap_l,
                right_cap=cap_r,
                buffer_delay=buffer_delay,
                left_delay=sim.delay_to(2) - buffer_delay,
                right_delay=sim.delay_to(3) - buffer_delay,
                left_slew=sim.slew_at(2),
                right_slew=sim.slew_at(3),
            )
        )
    return samples
