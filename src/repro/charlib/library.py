"""The queryable delay/slew library (Sec. 3.2.3).

"Whenever there is a need to compute delay or slew on a single-wire-type
or a branched-type component, the set of functions corresponding to the
specified driving and load buffer types can be used to compute highly
accurate delay and slew values that are comparable to SPICE simulation
results."
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.charlib.fitting import PolynomialFit, predict_many_grouped

SINGLE_FUNCTIONS = ("buffer_delay", "wire_delay", "wire_slew")
BRANCH_FUNCTIONS = (
    "buffer_delay",
    "left_delay",
    "right_delay",
    "left_slew",
    "right_slew",
)


@dataclass(frozen=True)
class SingleWireTiming:
    """Library answer for a single-wire component."""

    buffer_delay: float  # driving buffer intrinsic delay (s)
    wire_delay: float  # buffer output to load input (s)
    wire_slew: float  # 10-90 slew at the load input (s)

    @property
    def total_delay(self) -> float:
        """Delay from the driving buffer's input to the load's input."""
        return self.buffer_delay + self.wire_delay


@dataclass(frozen=True)
class BranchTiming:
    """Library answer for a branch component."""

    buffer_delay: float
    left_delay: float  # buffer output to left endpoint (s)
    right_delay: float
    left_slew: float
    right_slew: float

    @property
    def left_total(self) -> float:
        return self.buffer_delay + self.left_delay

    @property
    def right_total(self) -> float:
        return self.buffer_delay + self.right_delay


@dataclass(frozen=True)
class BranchTimingBatch:
    """Library answers for a batch of branch components (row arrays).

    Row ``k`` carries bit for bit the fields a scalar
    :meth:`DelaySlewLibrary.branch_component` call at row ``k``'s inputs
    would return; ``buffer_delay`` is only evaluated on request (the
    merge bisection never reads it).
    """

    left_delay: np.ndarray
    right_delay: np.ndarray
    left_slew: np.ndarray
    right_slew: np.ndarray
    buffer_delay: np.ndarray | None = None


@dataclass(frozen=True)
class BufferMeta:
    """Buffer facts the library needs without a Technology object."""

    name: str
    size: float
    input_cap: float


class DelaySlewLibrary:
    """Characterized delay/slew functions, indexed by buffer types.

    ``single[(drive, load)]`` holds :data:`SINGLE_FUNCTIONS` fits over
    (input_slew, length); ``branch[drive]`` holds :data:`BRANCH_FUNCTIONS`
    fits over (input_slew, stem, left_len, right_len, left_cap, right_cap).
    """

    def __init__(
        self,
        tech_name: str,
        buffers: list[BufferMeta],
        single: dict[tuple[str, str], dict[str, PolynomialFit]],
        branch: dict[str, dict[str, PolynomialFit]],
        meta: dict | None = None,
    ):
        if not buffers:
            raise ValueError("library needs at least one buffer")
        self.tech_name = tech_name
        self.buffers = {b.name: b for b in buffers}
        self.single = single
        self.branch = branch
        self.meta = meta or {}
        self._check_complete()

    def _check_complete(self) -> None:
        for drive in self.buffers:
            for load in self.buffers:
                if (drive, load) not in self.single:
                    raise ValueError(f"missing single-wire fits for {(drive, load)}")
                fits = self.single[(drive, load)]
                missing = set(SINGLE_FUNCTIONS) - set(fits)
                if missing:
                    raise ValueError(
                        f"{(drive, load)} missing fits: {sorted(missing)}"
                    )
            if drive not in self.branch:
                raise ValueError(f"missing branch fits for {drive}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def buffer_names(self) -> list[str]:
        """Buffer names ordered by increasing size."""
        return sorted(self.buffers, key=lambda n: self.buffers[n].size)

    def input_cap(self, name: str) -> float:
        return self.buffers[name].input_cap

    def load_name_for_cap(self, cap: float) -> str:
        """Buffer whose input cap best approximates an arbitrary load cap.

        Implements the paper's sink approximation: "components ending with
        a sink can be approximated by a component ending with a buffer of
        similar load capacitance" (Sec. 3.2.1).
        """
        best = None
        best_diff = float("inf")
        for name, meta in self.buffers.items():
            diff = abs(meta.input_cap - cap)
            if diff < best_diff:
                best_diff = diff
                best = name
        return best

    def single_wire(
        self, drive: str, load: str, input_slew: float, length: float
    ) -> SingleWireTiming:
        """Evaluate the single-wire fits for a (drive, load) combination."""
        fits = self.single[(drive, load)]
        return SingleWireTiming(
            buffer_delay=max(0.0, fits["buffer_delay"].predict(input_slew, length)),
            wire_delay=max(0.0, fits["wire_delay"].predict(input_slew, length)),
            wire_slew=max(1e-15, fits["wire_slew"].predict(input_slew, length)),
        )

    def single_wire_for_cap(
        self, drive: str, load_cap: float, input_slew: float, length: float
    ) -> SingleWireTiming:
        """Single-wire query with an arbitrary capacitive load (e.g. a sink)."""
        return self.single_wire(
            drive, self.load_name_for_cap(load_cap), input_slew, length
        )

    def single_wire_delay_slew(
        self,
        drive: str,
        load: str,
        input_slew: float,
        length: float,
        include_buffer_delay: bool,
    ) -> tuple[float, float]:
        """(stage delay, wire slew) of a single-wire component.

        Matches ``single_wire(...)``'s ``wire_delay + buffer_delay`` /
        ``wire_slew`` combination while skipping whichever fits the caller
        discards — the stage-timing inner loop never reads all three.
        """
        fits = self.single[(drive, load)]
        delay = max(0.0, fits["wire_delay"].predict(input_slew, length))
        if include_buffer_delay:
            delay = delay + max(0.0, fits["buffer_delay"].predict(input_slew, length))
        return delay, max(1e-15, fits["wire_slew"].predict(input_slew, length))

    def single_wire_total_delay(
        self, drive: str, load: str, input_slew: float, length: float
    ) -> float:
        """Just the total (buffer + wire) delay of a single-wire component.

        Identical to ``single_wire(...).total_delay`` with one fewer fit
        evaluation (the slew is not computed).
        """
        fits = self.single[(drive, load)]
        return max(0.0, fits["buffer_delay"].predict(input_slew, length)) + max(
            0.0, fits["wire_delay"].predict(input_slew, length)
        )

    def single_wire_slew(
        self, drive: str, load: str, input_slew: float, length: float
    ) -> float:
        """Just the wire slew of a single-wire component.

        Identical to ``single_wire(...).wire_slew`` but evaluates one fit
        instead of three — the inner loops of corrective buffer insertion
        and slew-window clamping only need the slew.
        """
        fit = self.single[(drive, load)]["wire_slew"]
        return max(1e-15, fit.predict(input_slew, length))

    def branch_component(
        self,
        drive: str,
        input_slew: float,
        stem_length: float,
        left_length: float,
        right_length: float,
        left_cap: float,
        right_cap: float,
    ) -> BranchTiming:
        """Evaluate the branch fits for a driving buffer."""
        fits = self.branch[drive]
        args = (input_slew, stem_length, left_length, right_length, left_cap, right_cap)
        return BranchTiming(
            buffer_delay=max(0.0, fits["buffer_delay"].predict(*args)),
            left_delay=max(0.0, fits["left_delay"].predict(*args)),
            right_delay=max(0.0, fits["right_delay"].predict(*args)),
            left_slew=max(1e-15, fits["left_slew"].predict(*args)),
            right_slew=max(1e-15, fits["right_slew"].predict(*args)),
        )

    def branch_slews(
        self,
        drive: str,
        input_slew: float,
        stem_length: float,
        left_length: float,
        right_length: float,
        left_cap: float,
        right_cap: float,
    ) -> tuple[float, float]:
        """Just the (left, right) slews of a branch component.

        Identical to the slews of :meth:`branch_component` but evaluates
        two fits instead of five.
        """
        fits = self.branch[drive]
        args = (input_slew, stem_length, left_length, right_length, left_cap, right_cap)
        return (
            max(1e-15, fits["left_slew"].predict(*args)),
            max(1e-15, fits["right_slew"].predict(*args)),
        )

    def _branch_batch_inputs(
        self,
        input_slew,
        stem_length,
        left_lengths,
        right_lengths,
        left_caps,
        right_caps,
    ) -> np.ndarray:
        left_lengths = np.asarray(left_lengths, dtype=float)
        x = np.empty((left_lengths.size, 6))
        x[:, 0] = input_slew
        x[:, 1] = stem_length
        x[:, 2] = left_lengths
        x[:, 3] = np.asarray(right_lengths, dtype=float)
        x[:, 4] = np.asarray(left_caps, dtype=float)
        x[:, 5] = np.asarray(right_caps, dtype=float)
        return x

    def branch_component_many(
        self,
        drive: str,
        input_slew,
        stem_length,
        left_lengths,
        right_lengths,
        left_caps,
        right_caps,
        include_buffer_delay: bool = False,
    ) -> BranchTimingBatch:
        """Batched :meth:`branch_component` over aligned row arrays.

        ``input_slew`` and ``stem_length`` may be scalars (broadcast over
        the batch) or arrays. Row values equal the scalar call's fields
        bit for bit (``PolynomialFit.predict_many`` performs the scalar
        evaluator's float ops element-wise), which is what lets the
        lockstep commit scheduler reproduce scalar bisection trajectories.
        """
        fits = self.branch[drive]
        x = self._branch_batch_inputs(
            input_slew, stem_length, left_lengths, right_lengths, left_caps, right_caps
        )
        names = ["left_delay", "right_delay", "left_slew", "right_slew"]
        if include_buffer_delay:
            names.append("buffer_delay")
        values = predict_many_grouped([fits[name] for name in names], x)
        return BranchTimingBatch(
            left_delay=np.maximum(0.0, values[0]),
            right_delay=np.maximum(0.0, values[1]),
            left_slew=np.maximum(1e-15, values[2]),
            right_slew=np.maximum(1e-15, values[3]),
            buffer_delay=(
                np.maximum(0.0, values[4]) if include_buffer_delay else None
            ),
        )

    def branch_slews_many(
        self,
        drive: str,
        input_slew,
        stem_length,
        left_lengths,
        right_lengths,
        left_caps,
        right_caps,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`branch_slews` over aligned row arrays."""
        fits = self.branch[drive]
        x = self._branch_batch_inputs(
            input_slew, stem_length, left_lengths, right_lengths, left_caps, right_caps
        )
        left, right = predict_many_grouped(
            [fits["left_slew"], fits["right_slew"]], x
        )
        return np.maximum(1e-15, left), np.maximum(1e-15, right)

    def max_single_length(self, drive: str, load: str) -> float:
        """Longest wire length covered by the (drive, load) fits."""
        return float(self.single[(drive, load)]["wire_slew"].hi[1])

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def fit_report(self) -> list[dict]:
        """Fit-quality rows (for EXPERIMENTS.md and the Fig. 3.4/3.6/3.7
        benches)."""
        rows = []
        for (drive, load), fits in sorted(self.single.items()):
            for fn, fit in fits.items():
                rows.append(
                    {
                        "component": "single",
                        "drive": drive,
                        "load": load,
                        "function": fn,
                        **fit.quality.as_dict(),
                    }
                )
        for drive, fits in sorted(self.branch.items()):
            for fn, fit in fits.items():
                rows.append(
                    {
                        "component": "branch",
                        "drive": drive,
                        "load": "-",
                        "function": fn,
                        **fit.quality.as_dict(),
                    }
                )
        return rows

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "tech_name": self.tech_name,
            "buffers": [
                {"name": b.name, "size": b.size, "input_cap": b.input_cap}
                for b in self.buffers.values()
            ],
            "single": {
                f"{drive}|{load}": {fn: fit.to_dict() for fn, fit in fits.items()}
                for (drive, load), fits in self.single.items()
            },
            "branch": {
                drive: {fn: fit.to_dict() for fn, fit in fits.items()}
                for drive, fits in self.branch.items()
            },
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DelaySlewLibrary":
        buffers = [BufferMeta(**b) for b in data["buffers"]]
        single = {}
        for key, fits in data["single"].items():
            drive, load = key.split("|")
            single[(drive, load)] = {
                fn: PolynomialFit.from_dict(f) for fn, f in fits.items()
            }
        branch = {
            drive: {fn: PolynomialFit.from_dict(f) for fn, f in fits.items()}
            for drive, fits in data["branch"].items()
        }
        return cls(data["tech_name"], buffers, single, branch, data.get("meta"))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "DelaySlewLibrary":
        return cls.from_dict(json.loads(Path(path).read_text()))
