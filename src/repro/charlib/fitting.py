"""Least-squares polynomial response-surface fitting.

Implements the paper's "surface fitting" (two variables, 3rd/4th order)
and "hyperplane fitting" (more variables, used for branch components) as
one generic n-variable polynomial least-squares fit with input
normalization and range clamping.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np
from numpy.polynomial import polynomial as npoly


@dataclass(frozen=True)
class FitQuality:
    """Residual statistics of a fit, on the training data."""

    rms_error: float
    max_error: float
    r_squared: float

    def as_dict(self) -> dict:
        return {
            "rms_error": self.rms_error,
            "max_error": self.max_error,
            "r_squared": self.r_squared,
        }


#: When False, new fits keep the interpreted ``predict`` instead of the
#: compiled evaluator — the perf harness uses this to time the seed
#: baseline faithfully. Results are bit-identical either way.
COMPILE_SCALAR = True

#: Interned (exponents, lo, hi) shapes: fits with equal shape ids share
#: normalized powers and term columns in :func:`predict_many_grouped`.
#: Grow-only over a process's handful of distinct training grids.
_SHAPE_IDS: dict[tuple, int] = {}


def _multi_indices(n_vars: int, degree: int) -> list[tuple[int, ...]]:
    """All exponent tuples with total degree <= ``degree``."""
    out = []
    for exps in itertools.product(range(degree + 1), repeat=n_vars):
        if sum(exps) <= degree:
            out.append(exps)
    out.sort(key=lambda e: (sum(e), e))
    return out


class PolynomialFit:
    """An n-variable polynomial fitted by linear least squares.

    Inputs are affinely normalized to [-1, 1] over the training range for
    conditioning; queries are clamped to the training range so the
    polynomial is never extrapolated (the paper's functions are likewise
    only valid over the characterized slew/length window).
    """

    def __init__(
        self,
        exponents: list[tuple[int, ...]],
        coeffs: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        quality: FitQuality,
        var_names: list[str] | None = None,
    ):
        self.exponents = exponents
        self.coeffs = np.asarray(coeffs, dtype=float)
        self.lo = np.asarray(lo, dtype=float)
        self.hi = np.asarray(hi, dtype=float)
        self.quality = quality
        self.var_names = var_names or [f"x{i}" for i in range(len(lo))]
        if len(self.exponents) != self.coeffs.size:
            raise ValueError("coefficient/term count mismatch")
        # Scalar fast path: plain-float structures, precomputed once.
        self._lo_list = [float(v) for v in self.lo]
        self._inv_span = [
            float(2.0 / (hi_v - lo_v)) if hi_v > lo_v else 0.0
            for lo_v, hi_v in zip(self.lo, self.hi)
        ]
        self._hi_list = [float(v) for v in self.hi]
        self._max_exp = [
            max(e[v] for e in self.exponents) for v in range(self.n_vars)
        ]
        self._terms = [
            (float(c), [(v, p) for v, p in enumerate(exps) if p > 0])
            for c, exps in zip(self.coeffs, self.exponents)
        ]
        shape = (
            tuple(tuple(e) for e in self.exponents),
            self.lo.tobytes(),
            self.hi.tobytes(),
        )
        self._shape_id = _SHAPE_IDS.setdefault(shape, len(_SHAPE_IDS))
        self._partial_cache: dict[float, object] = {}
        # The scalar entry point is megacalled by synthesis; shadow the
        # interpreted method with a straight-line compiled evaluator that
        # performs the exact same float operations in the same order.
        if COMPILE_SCALAR:
            self.predict = self._compile_scalar()

    # ------------------------------------------------------------------

    @property
    def n_vars(self) -> int:
        return self.lo.size

    def _normalize(self, x: np.ndarray) -> np.ndarray:
        span = np.where(self.hi > self.lo, self.hi - self.lo, 1.0)
        clipped = np.clip(x, self.lo, self.hi)
        return 2.0 * (clipped - self.lo) / span - 1.0

    def _design(self, xn: np.ndarray) -> np.ndarray:
        """Design matrix for normalized inputs, shape (n_pts, n_terms)."""
        n_pts = xn.shape[0]
        cols = np.empty((n_pts, len(self.exponents)))
        # Precompute powers per variable up to the max needed exponent.
        max_exp = max(max(e) for e in self.exponents)
        powers = [np.ones((n_pts, max_exp + 1)) for _ in range(self.n_vars)]
        for v in range(self.n_vars):
            for p in range(1, max_exp + 1):
                powers[v][:, p] = powers[v][:, p - 1] * xn[:, v]
        for t, exps in enumerate(self.exponents):
            col = None
            for v, p in enumerate(exps):
                if p:
                    # First factor is 1 * powers == powers, so the explicit
                    # ones column is skipped without changing any product.
                    col = powers[v][:, p] if col is None else col * powers[v][:, p]
            cols[:, t] = 1.0 if col is None else col
        return cols

    def _compile_scalar(self):
        """Generate the specialized scalar evaluator for this fit.

        Emits one flat function with the ranges and coefficients inlined
        as literals (``repr`` round-trips floats exactly) and the same
        operation order as :meth:`predict`, so results are bit-identical
        while skipping all list indexing and loop interpretation.
        """
        n = self.n_vars
        lines = [
            "def _predict(*args):",
            f"    if len(args) != {n}:",
            f"        raise ValueError(f'expected {n} arguments, got {{len(args)}}')",
        ]
        for v in range(n):
            lo, hi = repr(self._lo_list[v]), repr(self._hi_list[v])
            inv = repr(self._inv_span[v])
            lines.append(f"    v{v} = args[{v}]")
            lines.append(f"    v{v} = {lo} if v{v} < {lo} else {hi} if v{v} > {hi} else v{v}")
            lines.append(f"    x{v} = (v{v} - {lo}) * {inv} - 1.0")
            for p in range(2, self._max_exp[v] + 1):
                prev = f"x{v}" if p == 2 else f"x{v}_{p - 1}"
                lines.append(f"    x{v}_{p} = {prev} * x{v}")
        lines.append("    total = 0.0")
        for coeff, factors in self._terms:
            # Factor product first, coefficient last — the canonical term
            # order shared with ``predict`` and ``predict_many`` so scalar
            # and batched evaluation are bit-identical.
            parts = [
                f"x{v}" if p == 1 else f"x{v}_{p}" for v, p in factors
            ]
            parts.append(repr(coeff))
            lines.append(f"    total += {' * '.join(parts)}")
        lines.append("    return total")
        namespace: dict = {}
        exec("\n".join(lines), {}, namespace)
        return namespace["_predict"]

    def predict(self, *args: float) -> float:
        """Evaluate at one point given as scalars (clamped to range).

        Interpreted reference for the compiled evaluator installed by
        ``_compile_scalar`` (which shadows this method per instance);
        normalized powers are built with plain floats.
        """
        if len(args) != self.n_vars:
            raise ValueError(f"expected {self.n_vars} arguments, got {len(args)}")
        powers = []
        for v, value in enumerate(args):
            lo, hi = self._lo_list[v], self._hi_list[v]
            clipped = lo if value < lo else hi if value > hi else value
            xn = (clipped - lo) * self._inv_span[v] - 1.0
            var_pows = [1.0, xn]
            for _ in range(self._max_exp[v] - 1):
                var_pows.append(var_pows[-1] * xn)
            powers.append(var_pows)
        total = 0.0
        for coeff, factors in self._terms:
            if factors:
                v0, p0 = factors[0]
                term = powers[v0][p0]
                for v, p in factors[1:]:
                    term = term * powers[v][p]
                total += term * coeff
            else:
                total += coeff
        return total

    def __getstate__(self) -> dict:
        """Pickle only the defining data, not the derived evaluators.

        The compiled scalar ``predict`` (an ``exec``-generated function)
        and the ``partial_curve`` closures cannot be pickled; both are
        deterministic functions of the coefficients, so unpickling
        re-derives them and query results stay bit-identical. This is
        what lets a whole :class:`~repro.charlib.library.DelaySlewLibrary`
        ship to merge-routing worker processes.
        """
        return {
            "exponents": self.exponents,
            "coeffs": self.coeffs,
            "lo": self.lo,
            "hi": self.hi,
            "quality": self.quality,
            "var_names": self.var_names,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["exponents"],
            state["coeffs"],
            state["lo"],
            state["hi"],
            state["quality"],
            state["var_names"],
        )

    def partial_curve(self, x0: float):
        """Vectorized evaluator over the second variable with the first fixed.

        For a 2-variable fit queried at one fixed first input (the routing
        tables: one input slew, many lengths), the normalized powers of
        ``x0`` fold into the coefficients once, leaving a clip plus a
        Horner evaluation per call. Values agree with ``predict_many`` up
        to floating-point rounding (the summation order differs).
        """
        if self.n_vars != 2:
            raise ValueError("partial_curve requires a 2-variable fit")
        curve = self._partial_cache.get(x0)
        if curve is None:
            lo0, hi0 = self._lo_list[0], self._hi_list[0]
            v0 = lo0 if x0 < lo0 else hi0 if x0 > hi0 else x0
            xn0 = (v0 - lo0) * self._inv_span[0] - 1.0
            contracted = np.zeros(self._max_exp[1] + 1)
            for (e0, e1), c in zip(self.exponents, self.coeffs):
                contracted[e1] += float(c) * xn0**e0
            lo1, hi1 = self._lo_list[1], self._hi_list[1]
            inv1 = self._inv_span[1]

            def curve(values: np.ndarray) -> np.ndarray:
                xn = (np.clip(values, lo1, hi1) - lo1) * inv1 - 1.0
                return npoly.polyval(xn, contracted)

            self._partial_cache[x0] = curve
        return curve

    def _batch_powers(self, x: np.ndarray) -> list[list[np.ndarray]]:
        """Per-variable normalized power columns, built exactly like the
        scalar evaluator (clamp, affine normalize, repeated multiply)."""
        powers: list[list[np.ndarray]] = []
        for v in range(self.n_vars):
            lo, hi = self._lo_list[v], self._hi_list[v]
            # (clip - lo) * inv_span - 1.0, composed in place: the op
            # order matches the scalar evaluator, only the temporaries
            # are elided.
            xn = np.clip(x[:, v], lo, hi)
            xn -= lo
            xn *= self._inv_span[v]
            xn -= 1.0
            var_pows: list[np.ndarray] = [None, xn]  # index = exponent
            for _ in range(self._max_exp[v] - 1):
                var_pows.append(var_pows[-1] * xn)
            powers.append(var_pows)
        return powers

    def _term_columns(self, powers: list[list[np.ndarray]]) -> list[np.ndarray | None]:
        """Per-term factor products (coefficient-free; None for the
        constant term), left-associated like the scalar evaluator."""
        cols: list[np.ndarray | None] = []
        for __, factors in self._terms:
            if factors:
                v0, p0 = factors[0]
                col = powers[v0][p0]
                for v, p in factors[1:]:
                    col = col * powers[v][p]
                cols.append(col)
            else:
                cols.append(None)
        return cols

    def predict_many(self, x: np.ndarray) -> np.ndarray:
        """Evaluate at points given as an (n_pts, n_vars) array.

        Performs the exact float operations of the scalar ``predict`` —
        same clamps, same power chains, same term order — element-wise
        over the batch, so ``predict_many(x)[k] == predict(*x[k])`` bit
        for bit. The lockstep commit scheduler relies on this to keep
        batched bisection trajectories identical to the scalar flow.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.n_vars:
            raise ValueError(f"expected (n, {self.n_vars}) array, got {x.shape}")
        return _accumulate_terms(
            self._term_columns(self._batch_powers(x)),
            self._terms,
            x.shape[0],
            np.empty(x.shape[0]),
        )

    # ------------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        x: np.ndarray,
        y: np.ndarray,
        degree: int,
        var_names: list[str] | None = None,
        rcond: float | None = None,
    ) -> "PolynomialFit":
        """Fit a total-degree-``degree`` polynomial to samples ``(x, y)``."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim == 1:
            x = x[:, None]
        n_pts, n_vars = x.shape
        exponents = _multi_indices(n_vars, degree)
        if n_pts < len(exponents):
            raise ValueError(
                f"{n_pts} samples cannot determine {len(exponents)} terms"
            )
        lo = x.min(axis=0)
        hi = x.max(axis=0)
        stub = cls(
            exponents,
            np.zeros(len(exponents)),
            lo,
            hi,
            FitQuality(0.0, 0.0, 1.0),
            var_names,
        )
        design = stub._design(stub._normalize(x))
        coeffs, *_ = np.linalg.lstsq(design, y, rcond=rcond)
        pred = design @ coeffs
        resid = y - pred
        ss_res = float(np.sum(resid**2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        quality = FitQuality(
            rms_error=float(np.sqrt(np.mean(resid**2))),
            max_error=float(np.max(np.abs(resid))) if n_pts else 0.0,
            r_squared=1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0,
        )
        return cls(exponents, coeffs, lo, hi, quality, var_names)

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "exponents": [list(e) for e in self.exponents],
            "coeffs": self.coeffs.tolist(),
            "lo": self.lo.tolist(),
            "hi": self.hi.tolist(),
            "quality": self.quality.as_dict(),
            "var_names": self.var_names,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PolynomialFit":
        return cls(
            [tuple(e) for e in data["exponents"]],
            np.array(data["coeffs"]),
            np.array(data["lo"]),
            np.array(data["hi"]),
            FitQuality(**data["quality"]),
            data.get("var_names"),
        )


def _accumulate_terms(cols, terms, n, scratch) -> np.ndarray:
    """Sum one fit's terms over shared term columns.

    Performs ``total += coeff`` / ``total += col * coeff`` in term order —
    the canonical order shared with the scalar evaluators — with the
    per-term product placed into a caller-provided scratch buffer so the
    accumulation allocates one output array instead of one per term.
    The float results are bit for bit the naive loop's (``np.multiply``
    into a buffer performs the same element-wise ops as ``col * coeff``).
    """
    total = np.zeros(n)
    for col, (coeff, __) in zip(cols, terms):
        if col is None:
            total += coeff
        else:
            np.multiply(col, coeff, out=scratch)
            total += scratch
    return total


def predict_many_grouped(
    fits: list["PolynomialFit"], x: np.ndarray
) -> list[np.ndarray]:
    """Evaluate several fits at the same points, sharing term columns.

    The branch fits of one driving buffer are trained on one sample grid,
    so they share exponents and input ranges; their normalized powers and
    per-term factor products are then identical and are computed once for
    the whole group (fits interned the same ``_shape_id`` at load time
    exactly when that holds). Each fit still accumulates its terms in its
    own order with the canonical term op order, so every output column is
    bit for bit what ``fit.predict_many(x)`` (and hence ``fit.predict``)
    returns. Fits that do not share shape fall back to per-fit calls.
    """
    first = fits[0]
    if len(fits) > 1 and all(
        f._shape_id == first._shape_id for f in fits[1:]
    ):
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != first.n_vars:
            raise ValueError(
                f"expected (n, {first.n_vars}) array, got {x.shape}"
            )
        cols = first._term_columns(first._batch_powers(x))
        scratch = np.empty(x.shape[0])
        return [
            _accumulate_terms(cols, f._terms, x.shape[0], scratch)
            for f in fits
        ]
    return [f.predict_many(x) for f in fits]
