"""Library construction: run the sweeps, fit the surfaces, cache to JSON."""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.charlib.fitting import PolynomialFit
from repro.charlib.library import BufferMeta, DelaySlewLibrary
from repro.charlib.sweep import (
    BranchSample,
    CharConfig,
    InputShaper,
    SingleWireSample,
    characterize_branch,
    characterize_single_wire,
)
from repro.tech.buffers import BufferLibrary
from repro.tech.presets import cts_buffer_library, default_technology
from repro.tech.technology import Technology

_SINGLE_VARS = ["input_slew", "length"]
_BRANCH_VARS = [
    "input_slew",
    "stem_length",
    "left_length",
    "right_length",
    "left_cap",
    "right_cap",
]


def _fit_single(
    samples: list[SingleWireSample], degree: int
) -> dict[str, PolynomialFit]:
    x = np.array([[s.input_slew, s.length] for s in samples])
    fits = {}
    for fn in ("buffer_delay", "wire_delay", "wire_slew"):
        y = np.array([getattr(s, fn) for s in samples])
        fits[fn] = PolynomialFit.fit(x, y, degree, var_names=_SINGLE_VARS)
    return fits


def _fit_branch(samples: list[BranchSample], degree: int) -> dict[str, PolynomialFit]:
    x = np.array(
        [
            [
                s.input_slew,
                s.stem_length,
                s.left_length,
                s.right_length,
                s.left_cap,
                s.right_cap,
            ]
            for s in samples
        ]
    )
    fits = {}
    for fn in ("buffer_delay", "left_delay", "right_delay", "left_slew", "right_slew"):
        y = np.array([getattr(s, fn) for s in samples])
        fits[fn] = PolynomialFit.fit(x, y, degree, var_names=_BRANCH_VARS)
    return fits


def build_library(
    tech: Technology | None = None,
    buffers: BufferLibrary | None = None,
    config: CharConfig | None = None,
    verbose: bool = False,
) -> DelaySlewLibrary:
    """Characterize every buffer combination and fit the library."""
    tech = tech or default_technology()
    buffers = buffers or cts_buffer_library()
    config = config or CharConfig()
    t0 = time.perf_counter()
    single: dict[tuple[str, str], dict[str, PolynomialFit]] = {}
    branch: dict[str, dict[str, PolynomialFit]] = {}
    rng = np.random.default_rng(config.seed)
    for drive in buffers:
        shaper = InputShaper(tech, drive, config)
        for load in buffers:
            samples = characterize_single_wire(tech, drive, load, config, shaper)
            single[(drive.name, load.name)] = _fit_single(
                samples, config.single_degree
            )
            if verbose:
                q = single[(drive.name, load.name)]["wire_slew"].quality
                print(
                    f"  single {drive.name}->{load.name}: {len(samples)} pts, "
                    f"slew fit rms {q.rms_error * 1e12:.2f} ps"
                )
        branch_samples = characterize_branch(tech, drive, config, shaper, rng)
        branch[drive.name] = _fit_branch(branch_samples, config.branch_degree)
        if verbose:
            q = branch[drive.name]["left_slew"].quality
            print(
                f"  branch {drive.name}: {len(branch_samples)} pts, "
                f"left slew fit rms {q.rms_error * 1e12:.2f} ps"
            )
    metas = [
        BufferMeta(b.name, b.size, b.input_cap(tech)) for b in buffers
    ]
    meta = {
        "built_in_seconds": round(time.perf_counter() - t0, 1),
        "config": {
            "dt": config.dt,
            "source_slew": config.source_slew,
            "single_degree": config.single_degree,
            "branch_degree": config.branch_degree,
            "branch_samples": config.branch_samples,
            "seed": config.seed,
        },
    }
    return DelaySlewLibrary(tech.name, metas, single, branch, meta)


def default_library_path(tech: Technology | None = None) -> Path:
    """Location of the packaged prebuilt library JSON."""
    tech = tech or default_technology()
    data_dir = Path(__file__).resolve().parent.parent / "data"
    return data_dir / f"library_{tech.name}.json"


_DEFAULT_CACHE: dict[str, DelaySlewLibrary] = {}


def load_default_library(
    tech: Technology | None = None,
    rebuild: bool = False,
    verbose: bool = False,
) -> DelaySlewLibrary:
    """Load the packaged library for ``tech``, building it if absent.

    The repository ships a prebuilt JSON for the default technology so
    users (and the test suite) never pay the characterization cost; pass
    ``rebuild=True`` to re-run the sweeps from scratch.
    """
    tech = tech or default_technology()
    path = default_library_path(tech)
    if not rebuild and tech.name in _DEFAULT_CACHE:
        return _DEFAULT_CACHE[tech.name]
    if path.exists() and not rebuild:
        lib = DelaySlewLibrary.load(path)
    else:
        lib = build_library(tech, verbose=verbose)
        path.parent.mkdir(parents=True, exist_ok=True)
        lib.save(path)
    _DEFAULT_CACHE[tech.name] = lib
    return lib
