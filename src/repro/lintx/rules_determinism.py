"""Determinism rules (``DET1xx``).

Every fast path in this codebase is contractually bit-identical to its
scalar fallback, and checkpoints must replay to the same tree on any
machine. That dies the moment a result depends on a wall clock, an
unseeded RNG, hash-ordered iteration (``PYTHONHASHSEED`` randomizes
``str`` hashes per *process*, so set order differs between a pool
worker and its parent), filesystem enumeration order, or worker
scheduling. These rules flag each of those at the AST level.

All rules share one resolution layer: import aliases are tracked so
``np.random.rand`` and ``numpy.random.rand`` match the same rule, and
per-function local inference tracks which names are bound to sets or
lists (a name keeps a type only while *every* assignment in the
function agrees).

A flagged expression is allowed when an enclosing call in the same
statement is order-insensitive (``sorted``, ``len``, ``set``,
``frozenset``, ``min``, ``max``, ``any``, ``all``) — ``sorted(n for n
in os.listdir(d))`` is the fix, not a finding. ``sum`` is deliberately
*not* in that list: float addition does not commute.
"""

from __future__ import annotations

import ast

from repro.lintx.core import Finding, Rule, SourceFile, register

#: Wrapping any of these around a flagged expression makes its
#: consumption order-insensitive.
ORDER_INSENSITIVE_CALLS = frozenset(
    ("sorted", "len", "set", "frozenset", "min", "max", "any", "all")
)

#: ``random.<fn>`` calls that are fine: explicit generator construction
#: (callers seed it) and state plumbing.
_STDLIB_RANDOM_OK = frozenset(("Random", "SystemRandom", "getstate", "setstate"))

#: ``numpy.random.<fn>`` calls that are fine: constructing an explicit
#: (seedable) generator or bit generator, not drawing from the global.
_NP_RANDOM_OK = frozenset(
    (
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    )
)

_DIR_SCAN_CALLS = frozenset(
    ("os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob")
)
#: Method names distinctive enough to flag on any receiver (pathlib).
_DIR_SCAN_METHODS = frozenset(("iterdir", "rglob"))

#: Consuming a set through these materializes its arbitrary order into
#: a result.
_ORDER_MATERIALIZING_CALLS = frozenset(
    ("list", "tuple", "enumerate", "iter", "sum", "reversed")
)


def annotate_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> ast.AST | None:
    return getattr(node, "_lint_parent", None)


class ImportMap:
    """Resolve names/attribute chains to dotted module paths."""

    def __init__(self, tree: ast.AST):
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else name
                    self.aliases[name] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue  # relative import: not a stdlib/numpy module
                for alias in node.names:
                    name = alias.asname or alias.name
                    self.aliases[name] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted path of a Name/Attribute chain, alias-expanded."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.aliases.get(node.id, node.id))
        return ".".join(reversed(parts))


def enclosing_statement(node: ast.AST) -> ast.AST:
    current = node
    while not isinstance(current, ast.stmt):
        up = parent_of(current)
        if up is None:
            break
        current = up
    return current


def has_order_insensitive_ancestor(
    node: ast.AST, imports: ImportMap
) -> bool:
    """True when an enclosing call (same statement) absorbs ordering."""
    current = parent_of(node)
    while current is not None and not isinstance(current, ast.stmt):
        if isinstance(current, ast.Call):
            name = imports.resolve(current.func)
            if name in ORDER_INSENSITIVE_CALLS:
                return True
        if isinstance(current, ast.Compare) and any(
            isinstance(op, (ast.In, ast.NotIn)) for op in current.ops
        ):
            return True  # membership tests are order-insensitive
        current = parent_of(current)
    return False


class LocalTypes(ast.NodeVisitor):
    """Per-scope set/list inference for simple local names.

    A name is typed only when every assignment to it in the scope
    agrees; a single disagreeing (or opaque) assignment drops it to
    unknown, so the rules under-report instead of guessing.
    """

    def __init__(self, imports: ImportMap):
        self.imports = imports
        self.kinds: dict[str, str] = {}  # name -> "set" | "list" | "?"

    def infer(self, node: ast.expr) -> str | None:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(node, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(node, ast.Call):
            name = self.imports.resolve(node.func)
            if name in ("set", "frozenset"):
                return "set"
            if name == "list":
                return "list"
            if isinstance(node.func, ast.Attribute):
                method = node.func.attr
                if method in (
                    "union",
                    "intersection",
                    "difference",
                    "symmetric_difference",
                ):
                    base = self.lookup(node.func.value)
                    if base == "set":
                        return "set"
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            if "set" in (self.lookup(node.left), self.lookup(node.right)):
                return "set"
        if isinstance(node, ast.Name):
            return self.kinds.get(node.id)
        return None

    def lookup(self, node: ast.expr) -> str | None:
        return self.infer(node)

    def record(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        kind = self.infer(value)
        previous = self.kinds.get(target.id)
        if previous is None:
            self.kinds[target.id] = kind or "?"
        elif previous != kind:
            self.kinds[target.id] = "?"

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self.record(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.record(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name):
            self.kinds[node.target.id] = "?"
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scopes are analyzed on their own

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass


def scopes(tree: ast.AST):
    """Yield (scope_node, local type table) for the module and every
    function, each analyzed against its own assignments only."""
    yield tree, None
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, None


def direct_children_scope(scope: ast.AST, node: ast.AST) -> bool:
    """Is ``node`` inside ``scope`` but not inside a nested function?"""
    current = parent_of(node)
    while current is not None:
        if current is scope:
            return True
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return False
        current = parent_of(current)
    return scope is None


class _FileRule(Rule):
    """Per-file rule plumbing: parse once, annotate parents, resolve
    imports, then delegate."""

    def check_file(self, source: SourceFile) -> list[Finding]:
        if source.tree is None:
            return []
        if not getattr(source.tree, "_lint_parents_done", False):
            annotate_parents(source.tree)
            source.tree._lint_parents_done = True  # type: ignore[attr-defined]
        imports = getattr(source.tree, "_lint_imports", None)
        if imports is None:
            imports = ImportMap(source.tree)
            source.tree._lint_imports = imports  # type: ignore[attr-defined]
        return list(self.visit(source, source.tree, imports))

    def visit(self, source: SourceFile, tree: ast.AST, imports: ImportMap):
        raise NotImplementedError


@register
class WallClockRule(_FileRule):
    id = "DET101"
    severity = "error"
    summary = (
        "time.time() used where runs must replay; durations need"
        " time.perf_counter(), real timestamps need a suppression"
    )

    def visit(self, source, tree, imports):
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if imports.resolve(node.func) == "time.time":
                yield self.finding(
                    source.path,
                    node.lineno,
                    node.col_offset + 1,
                    "time.time() is wall-clock (NTP steps, DST): use"
                    " time.perf_counter() for durations, or suppress"
                    " with a reason if a real timestamp is wanted",
                )


@register
class UnseededRandomRule(_FileRule):
    id = "DET102"
    severity = "error"
    summary = (
        "draw from the process-global RNG (random.*, numpy.random.*);"
        " use an explicitly seeded default_rng/Random instance"
    )

    def visit(self, source, tree, imports):
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.resolve(node.func)
            if name is None or "." not in name:
                continue
            module, _, attr = name.rpartition(".")
            if module == "random" and attr not in _STDLIB_RANDOM_OK:
                yield self.finding(
                    source.path,
                    node.lineno,
                    node.col_offset + 1,
                    f"random.{attr}() draws from the process-global RNG"
                    " (call-order dependent): pass an explicitly seeded"
                    " random.Random(seed) instance instead",
                )
            elif module == "numpy.random" and attr not in _NP_RANDOM_OK:
                yield self.finding(
                    source.path,
                    node.lineno,
                    node.col_offset + 1,
                    f"numpy.random.{attr}() uses the global numpy RNG"
                    " (call-order dependent): draw from an explicitly"
                    " seeded numpy.random.default_rng(seed)",
                )


@register
class SetIterationRule(_FileRule):
    id = "DET103"
    severity = "error"
    summary = (
        "iteration/materialization of a set in arbitrary hash order;"
        " wrap in sorted(...) (str hashes differ per process)"
    )

    _MESSAGE = (
        "set order is arbitrary and differs across processes"
        " (PYTHONHASHSEED): wrap in sorted(...) before it can reach a"
        " result, or consume it order-insensitively"
    )

    def visit(self, source, tree, imports):
        for scope, _ in scopes(tree):
            types = LocalTypes(imports)
            body = scope.body if hasattr(scope, "body") else []
            for stmt in body:
                types.visit(stmt)
            yield from self._check_scope(source, scope, types, imports)

    def _is_set(self, types: LocalTypes, node: ast.expr) -> bool:
        return types.infer(node) == "set"

    def _check_scope(self, source, scope, types, imports):
        for node in ast.walk(scope):
            if not direct_children_scope(scope, node):
                continue
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set(types, node.iter):
                    yield self._finding(source, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if self._is_set(types, gen.iter) and not (
                        has_order_insensitive_ancestor(node, imports)
                        or isinstance(node, ast.SetComp)
                    ):
                        yield self._finding(source, gen.iter)
            elif isinstance(node, ast.Call):
                name = imports.resolve(node.func)
                consumes = name in _ORDER_MATERIALIZING_CALLS or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                )
                if not consumes:
                    continue
                for arg in node.args[:1]:
                    if self._is_set(types, arg) and not has_order_insensitive_ancestor(
                        node, imports
                    ):
                        yield self._finding(source, arg)
            elif isinstance(node, ast.FormattedValue):
                if self._is_set(types, node.value):
                    yield self._finding(source, node.value)

    def _finding(self, source, node):
        return self.finding(
            source.path, node.lineno, node.col_offset + 1, self._MESSAGE
        )


@register
class DirScanRule(_FileRule):
    id = "DET104"
    severity = "error"
    summary = (
        "filesystem enumeration (os.listdir/glob/iterdir) in directory"
        " order; wrap in sorted(...)"
    )

    def visit(self, source, tree, imports):
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.resolve(node.func)
            is_scan = name in _DIR_SCAN_CALLS
            if not is_scan and isinstance(node.func, ast.Attribute):
                method = node.func.attr
                if method in _DIR_SCAN_METHODS:
                    is_scan = True
                elif method == "glob" and not isinstance(
                    node.func.value, ast.Name
                ):
                    is_scan = True  # chained Path(...).glob(...)
                elif method == "glob" and isinstance(node.func.value, ast.Name):
                    # p.glob(...) where p is not the glob module itself
                    base = imports.resolve(node.func.value)
                    is_scan = base != "glob"
            if not is_scan:
                continue
            if has_order_insensitive_ancestor(node, imports):
                continue
            yield self.finding(
                source.path,
                node.lineno,
                node.col_offset + 1,
                f"{name or node.func.attr} enumerates the filesystem in"
                " directory order (differs across machines/filesystems):"
                " wrap in sorted(...)",
            )


@register
class GatherOrderRule(_FileRule):
    id = "DET105"
    severity = "error"
    summary = (
        "completion-ordered gather (as_completed/imap_unordered);"
        " results must be gathered in submission order"
    )

    def visit(self, source, tree, imports):
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.resolve(node.func) or ""
            attr = name.rpartition(".")[2]
            if attr in ("as_completed", "imap_unordered"):
                yield self.finding(
                    source.path,
                    node.lineno,
                    node.col_offset + 1,
                    f"{attr}() yields results in completion order, which"
                    " depends on worker scheduling; gather futures in"
                    " submission order (see repro.core.parallel_merge)"
                    " so float accumulation and id assignment replay",
                )


@register
class ArbitraryRemovalRule(_FileRule):
    id = "DET106"
    severity = "error"
    summary = (
        "arbitrary/equality-ambiguous element removal (set.pop,"
        " dict.popitem, next(iter(set)), list.remove of a computed key)"
    )

    def visit(self, source, tree, imports):
        for scope, _ in scopes(tree):
            types = LocalTypes(imports)
            for stmt in scope.body if hasattr(scope, "body") else []:
                types.visit(stmt)
            for node in ast.walk(scope):
                if not direct_children_scope(scope, node):
                    continue
                if not isinstance(node, ast.Call):
                    continue
                yield from self._check_call(source, node, types, imports)

    def _check_call(self, source, node: ast.Call, types, imports):
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "pop" and not node.args:
                if types.infer(func.value) == "set":
                    yield self.finding(
                        source.path,
                        node.lineno,
                        node.col_offset + 1,
                        "set.pop() removes a hash-order-arbitrary"
                        " element: pop from a sorted list instead",
                    )
            elif func.attr == "popitem":
                yield self.finding(
                    source.path,
                    node.lineno,
                    node.col_offset + 1,
                    "dict.popitem() couples results to insertion order;"
                    " pop an explicit key instead",
                )
            elif func.attr == "remove" and node.args:
                arg = node.args[0]
                computed = not isinstance(arg, (ast.Name, ast.Attribute))
                if computed and types.infer(func.value) == "list":
                    yield self.finding(
                        source.path,
                        node.lineno,
                        node.col_offset + 1,
                        "list.remove(<computed value>) deletes the first"
                        " ==-equal element, which under float ties may"
                        " not be the intended one (the PR 2 seed-removal"
                        " bug): locate the element by identity/index",
                    )
        elif (
            imports.resolve(func) == "next"
            and node.args
            and isinstance(node.args[0], ast.Call)
        ):
            inner = node.args[0]
            if (
                imports.resolve(inner.func) == "iter"
                and inner.args
                and types.infer(inner.args[0]) == "set"
            ):
                yield self.finding(
                    source.path,
                    node.lineno,
                    node.col_offset + 1,
                    "next(iter(<set>)) picks a hash-order-arbitrary"
                    " element: use min/max or sorted(...)[0]",
                )
