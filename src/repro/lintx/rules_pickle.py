"""Pool-picklability rules (``PIK2xx``).

The parallel route phase ships a :class:`~repro.core.parallel_merge.
WorkerContext` (and everything transitively reachable from it, plus
``route_pair``'s arguments and results) through ``pickle`` into spawned
workers. A lambda, a locally defined function, an open file handle or a
synchronization primitive stored on any of those classes would not fail
at import time or in the serial tests — it would break the first
*pooled* run, at pickling time, deep inside ``ProcessPoolExecutor``.
This pass finds the reachable class set statically and flags those
attributes at the definition site.

Reachability: roots are the ``WorkerContext`` dataclass fields and the
annotations of ``route_pair`` (parameters and return) in
``core/merge_routing.py``; from each reached class the pass follows
dataclass/``__init__`` attribute annotations and ``self.x = Class(...)``
constructions, by class name, across every scanned module.

A class that customizes pickling (``__getstate__`` / ``__reduce__`` /
``__reduce_ex__``) is trusted to exclude its unpicklable state —
``PolynomialFit`` re-derives its compiled evaluators this way — and is
skipped.
"""

from __future__ import annotations

import ast

from repro.lintx.core import Finding, Project, Rule, register
from repro.lintx.rules_determinism import ImportMap

#: Constructors whose results can never cross a pickle boundary.
_UNPICKLABLE_CALLS = {
    "open": "an open file handle",
    "threading.Lock": "a lock",
    "threading.RLock": "a lock",
    "threading.Condition": "a condition variable",
    "threading.Event": "an event",
    "threading.Semaphore": "a semaphore",
    "threading.BoundedSemaphore": "a semaphore",
    "threading.Thread": "a thread",
    "socket.socket": "a socket",
    "subprocess.Popen": "a subprocess handle",
    "multiprocessing.Lock": "a lock",
    "multiprocessing.Queue": "an IPC queue",
    "concurrent.futures.ProcessPoolExecutor": "an executor",
    "concurrent.futures.ThreadPoolExecutor": "an executor",
}

_PICKLE_HOOKS = ("__getstate__", "__reduce__", "__reduce_ex__")


def _annotation_names(node: ast.expr | None) -> set[str]:
    """Every identifier inside an annotation expression.

    String annotations (``"WorkerContext"``) are parsed; subscripted
    containers (``list[BBox]``, ``Optional[TreeNode]``) contribute every
    inner name, which over-approximates reachability — exactly right for
    a safety rule.
    """
    names: set[str] = set()
    if node is None:
        return names
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return names
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            try:
                inner = ast.parse(sub.value, mode="eval").body
            except SyntaxError:
                continue
            for n in ast.walk(inner):
                if isinstance(n, ast.Name):
                    names.add(n.id)
    return names


class _ClassInfo:
    def __init__(self, path: str, node: ast.ClassDef, imports: ImportMap):
        self.path = path
        self.node = node
        self.imports = imports

    def referenced_classes(self) -> set[str]:
        """Class names this class can hold instances of."""
        names: set[str] = set()
        for base in self.node.bases:
            names.update(_annotation_names(base))
        for stmt in self.node.body:
            if isinstance(stmt, ast.AnnAssign):
                names.update(_annotation_names(stmt.annotation))
        for method in self.node.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            for sub in ast.walk(method):
                if (
                    isinstance(sub, ast.Assign)
                    and isinstance(sub.value, ast.Call)
                    and isinstance(sub.value.func, ast.Name)
                    and any(
                        isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"
                        for t in sub.targets
                    )
                ):
                    names.add(sub.value.func.id)
                if isinstance(sub, ast.AnnAssign) and isinstance(
                    sub.target, ast.Attribute
                ):
                    names.update(_annotation_names(sub.annotation))
        return names

    def has_pickle_hook(self) -> bool:
        return any(
            isinstance(stmt, ast.FunctionDef) and stmt.name in _PICKLE_HOOKS
            for stmt in self.node.body
        )


@register
class PoolPicklabilityRule(Rule):
    id = "PIK201"
    severity = "error"
    summary = (
        "WorkerContext/route_pair-reachable class stores state that"
        " cannot cross the process-pool pickle boundary"
    )

    #: Anchor names; the rest of the reachable set is derived.
    ROOT_CLASSES = ("WorkerContext",)
    ROOT_FUNCTIONS = ("route_pair",)

    def check_project(self, project: Project) -> list[Finding]:
        classes: dict[str, list[_ClassInfo]] = {}
        module_mutables: dict[str, set[str]] = {}
        root_names: set[str] = set()

        for source in project.files:
            if source.tree is None:
                continue
            imports = ImportMap(source.tree)
            mutables: set[str] = set()
            for stmt in source.tree.body:
                if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.value, (ast.List, ast.Dict, ast.Set)
                ):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            mutables.add(target.id)
            module_mutables[source.path] = mutables
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    classes.setdefault(node.name, []).append(
                        _ClassInfo(source.path, node, imports)
                    )
                elif (
                    isinstance(node, ast.FunctionDef)
                    and node.name in self.ROOT_FUNCTIONS
                ):
                    args = node.args
                    for arg in (
                        args.posonlyargs + args.args + args.kwonlyargs
                    ):
                        root_names.update(_annotation_names(arg.annotation))
                    root_names.update(_annotation_names(node.returns))
        root_names.update(self.ROOT_CLASSES)

        if not any(name in classes for name in self.ROOT_CLASSES):
            return []  # no pool boundary in the scanned tree

        reachable: set[str] = set()
        frontier = [name for name in sorted(root_names) if name in classes]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            for info in classes[name]:
                for ref in sorted(info.referenced_classes()):
                    if ref in classes and ref not in reachable:
                        frontier.append(ref)

        findings: list[Finding] = []
        for name in sorted(reachable):
            for info in classes[name]:
                if info.has_pickle_hook():
                    continue
                findings.extend(
                    self._check_class(info, module_mutables[info.path])
                )
        return findings

    def _check_class(
        self, info: _ClassInfo, module_mutables: set[str]
    ) -> list[Finding]:
        findings: list[Finding] = []
        cls = info.node

        def flag(node: ast.AST, what: str) -> None:
            findings.append(
                self.finding(
                    info.path,
                    node.lineno,
                    node.col_offset + 1,
                    f"{cls.name} is shipped to pool workers by pickle"
                    f" but stores {what}; the first parallel run would"
                    " raise inside ProcessPoolExecutor (define"
                    " __getstate__ to exclude it, or drop it)",
                )
            )

        for stmt in cls.body:
            # class attribute / dataclass default that is itself a lambda
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Lambda
            ):
                flag(stmt, "a lambda as a class attribute")
            if (
                isinstance(stmt, ast.AnnAssign)
                and stmt.value is not None
                and isinstance(stmt.value, ast.Lambda)
            ):
                flag(stmt, "a lambda as a field default")
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.value, ast.Call
            ):
                call = stmt.value
                if (
                    isinstance(call.func, ast.Name)
                    and call.func.id == "field"
                ):
                    for kw in call.keywords:
                        if kw.arg == "default" and isinstance(
                            kw.value, ast.Lambda
                        ):
                            flag(stmt, "a lambda as a field default")

        for method in cls.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            local_defs = {
                sub.name
                for sub in ast.walk(method)
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                and sub is not method
            }
            for sub in ast.walk(method):
                if not isinstance(sub, ast.Assign):
                    continue
                if not any(
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                    for t in sub.targets
                ):
                    continue
                value = sub.value
                if isinstance(value, ast.Lambda):
                    flag(sub, "a lambda on self")
                elif isinstance(value, ast.Name):
                    if value.id in local_defs:
                        flag(sub, f"the local function {value.id}() on self")
                    elif value.id in module_mutables:
                        flag(
                            sub,
                            f"the module-level mutable {value.id} on self"
                            " (after fork/spawn the worker's copy"
                            " silently diverges from the parent's)",
                        )
                elif isinstance(value, ast.Call):
                    name = info.imports.resolve(value.func)
                    if name in _UNPICKLABLE_CALLS:
                        flag(sub, f"{_UNPICKLABLE_CALLS[name]} ({name}) on self")
        return findings
