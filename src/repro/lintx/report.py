"""Human and JSON reporters for repro-lint.

Both render the same :class:`~repro.lintx.core.LintResult`; CI consumes
``--json`` (stable schema, version field), humans get one
``path:line:col: severity RULE message`` line per finding plus a
summary. One entry point, two audiences.
"""

from __future__ import annotations

import json

from repro.lintx.core import LintResult, all_rules

JSON_SCHEMA_VERSION = 1


def render_human(result: LintResult, *, verbose: bool = False) -> str:
    lines = [finding.render() for finding in result.findings]
    counts = result.counts()
    summary = (
        f"{result.files_scanned} files scanned: "
        f"{counts['error']} errors, {counts['warning']} warnings,"
        f" {counts['info']} infos"
    )
    if result.suppressed:
        summary += f" ({result.suppressed} suppressed)"
    if lines:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": result.files_scanned,
        "suppressed": result.suppressed,
        "counts": result.counts(),
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in result.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    lines = ["repro-lint rules:", ""]
    for rule in all_rules():
        lines.append(f"  {rule.id}  [{rule.severity}]")
        lines.append(f"      {rule.summary}")
    return "\n".join(lines)
