"""repro-lint core: findings, suppressions, rule registry, runner.

The analyzer statically enforces the two load-bearing properties of
this codebase (see ANALYSIS.md):

- **determinism** — every fast path must be bit-identical and
  replayable, so wall clocks, unseeded RNGs, hash-ordered iteration and
  scheduling-ordered gathers are findings, not style nits;
- **kernel contracts** — every knob-gated kernel must ship with its
  safety rails (scalar-fallback degradation guard, fault-injection
  site, CI fallback leg, checkpoint-digest classification, documented
  CLI flag), checked against the live tree, not against convention.

Rules come in three families, each in its own module:

==========  ==========================================================
``DET1xx``  per-file AST determinism rules (:mod:`.rules_determinism`)
``PIK2xx``  pool-picklability rules (:mod:`.rules_pickle`)
``CON3xx``  whole-program contract cross-checks (:mod:`.contracts`)
``LNT0xx``  the analyzer's own hygiene (suppression grammar)
==========  ==========================================================

Suppressions
------------

A finding is silenced in place, never globally::

    x = time.time()  # repro-lint: ignore[DET101] wall-clock timestamp for the report header

    # repro-lint: ignore-file[DET104] fixture tree enumerates a tmpdir it fully controls

``ignore[...]`` acts on its own physical line, ``ignore-file[...]`` on
the whole file; both take a comma list of rule ids and **require** a
reason (an empty reason is finding ``LNT001``). A suppression that
matches no finding is reported as ``LNT002`` so stale ignores cannot
accumulate.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field

SEVERITIES = ("info", "warning", "error")

#: Threshold name accepted by ``--fail-on`` meaning "never fail".
NEVER = "never"


def severity_rank(severity: str) -> int:
    return SEVERITIES.index(severity)


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, anchored to a file location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} {self.rule} {self.message}"
        )


@dataclass
class Suppression:
    """One parsed ``repro-lint: ignore[...]`` comment."""

    rules: tuple[str, ...]
    reason: str
    line: int
    file_wide: bool
    used: bool = False


_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>ignore-file|ignore)"
    r"\[(?P<rules>[A-Za-z0-9_,\s-]*)\]\s*(?P<reason>.*?)\s*$"
)
_MARKER_RE = re.compile(r"#\s*repro-lint:")


@dataclass
class SourceFile:
    """A parsed source file plus its suppression table."""

    path: str
    text: str
    lines: list[str] = field(default_factory=list)
    tree: ast.AST | None = None
    syntax_error: SyntaxError | None = None
    suppressions: list[Suppression] = field(default_factory=list)
    grammar_findings: list[Finding] = field(default_factory=list)

    @classmethod
    def load(cls, path: str) -> "SourceFile":
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        return cls.parse(path, text)

    @classmethod
    def parse(cls, path: str, text: str) -> "SourceFile":
        sf = cls(path=path, text=text, lines=text.splitlines())
        try:
            sf.tree = ast.parse(text)
        except SyntaxError as exc:
            sf.syntax_error = exc
        sf._scan_suppressions()
        return sf

    def _comments(self) -> list[tuple[int, str]]:
        """Real ``#`` comments only — a suppression example inside a
        docstring must not act as a live suppression."""
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            return [
                (token.start[0], token.string)
                for token in tokens
                if token.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, SyntaxError, IndentationError):
            # Unparseable file: fall back to raw lines; LNT003 reports
            # the syntax error itself.
            return list(enumerate(self.lines, start=1))

    def _scan_suppressions(self) -> None:
        for lineno, line in self._comments():
            if not _MARKER_RE.search(line):
                continue
            match = _SUPPRESS_RE.search(line)
            if match is None:
                self.grammar_findings.append(
                    Finding(
                        "LNT001",
                        "error",
                        self.path,
                        lineno,
                        1,
                        "malformed repro-lint comment: expected"
                        " 'repro-lint: ignore[RULE-ID,...] reason' or"
                        " 'repro-lint: ignore-file[RULE-ID,...] reason'",
                    )
                )
                continue
            rules = tuple(
                token.strip()
                for token in match.group("rules").split(",")
                if token.strip()
            )
            reason = match.group("reason")
            if not rules or not reason:
                self.grammar_findings.append(
                    Finding(
                        "LNT001",
                        "error",
                        self.path,
                        lineno,
                        1,
                        "suppression needs at least one rule id and a"
                        " non-empty reason",
                    )
                )
                continue
            self.suppressions.append(
                Suppression(
                    rules=rules,
                    reason=reason,
                    line=lineno,
                    file_wide=match.group("kind") == "ignore-file",
                )
            )

    def suppresses(self, finding: Finding) -> bool:
        """Match ``finding`` against this file's table, marking use."""
        hit = False
        for sup in self.suppressions:
            if finding.rule not in sup.rules:
                continue
            if sup.file_wide or sup.line == finding.line:
                sup.used = True
                hit = True
        return hit

    def unused_suppression_findings(self) -> list[Finding]:
        return [
            Finding(
                "LNT002",
                "warning",
                self.path,
                sup.line,
                1,
                f"suppression of {','.join(sup.rules)} matched no"
                " finding; delete it or fix the rule id",
            )
            for sup in self.suppressions
            if not sup.used
        ]


class Rule:
    """Base class: per-file rules override :meth:`check_file`,
    whole-program rules override :meth:`check_project`."""

    id: str = ""
    severity: str = "error"
    summary: str = ""  # one line, shown by --list-rules and in ANALYSIS.md

    def check_file(self, source: SourceFile) -> list[Finding]:
        return []

    def check_project(self, project: "Project") -> list[Finding]:
        return []

    def finding(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        return Finding(self.id, self.severity, path, line, col, message)


@dataclass
class Project:
    """Every scanned source file, plus where the scan was rooted."""

    files: list[SourceFile]
    paths: list[str]

    def by_suffix(self, suffix: str) -> list[SourceFile]:
        return [f for f in self.files if f.path.endswith(suffix)]


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"{rule.id}: unknown severity {rule.severity!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> list[Rule]:
    """Every registered rule, in stable id order."""
    _load_rule_modules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def _load_rule_modules() -> None:
    # Deferred so `import repro.lintx.core` never cycles with the rule
    # modules (they import `register` from here).
    from repro.lintx import contracts, rules_determinism, rules_pickle  # noqa: F401


def iter_python_files(paths: list[str]) -> list[str]:
    """Every ``.py`` file under ``paths``, sorted for determinism."""
    found: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                found.add(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):  # repro-lint: ignore[DET104] every walked file lands in one set that is sorted on return
            dirnames[:] = sorted(
                d for d in dirnames if d not in ("__pycache__", ".git")
            )
            for name in filenames:
                if name.endswith(".py"):
                    found.add(os.path.join(dirpath, name))
    return sorted(found)


@dataclass
class LintResult:
    """The outcome of one analyzer run."""

    findings: list[Finding]
    files_scanned: int
    suppressed: int

    def counts(self) -> dict[str, int]:
        counts = {severity: 0 for severity in SEVERITIES}
        for finding in self.findings:
            counts[finding.severity] += 1
        return counts

    def worst_rank(self) -> int:
        if not self.findings:
            return -1
        return max(severity_rank(f.severity) for f in self.findings)

    def exit_code(self, fail_on: str) -> int:
        if fail_on == NEVER:
            return 0
        return 1 if self.worst_rank() >= severity_rank(fail_on) else 0


def run_lint(
    paths: list[str],
    *,
    rules: list[Rule] | None = None,
    contracts: bool = True,
) -> LintResult:
    """Scan ``paths`` and return every unsuppressed finding.

    ``contracts=False`` skips the whole-program ``CON``/``PIK`` passes
    (used by the warn-only tests/benchmarks scan, where there is no
    options registry to cross-check).
    """
    rules = all_rules() if rules is None else rules
    files = [SourceFile.load(path) for path in iter_python_files(paths)]
    project = Project(files=files, paths=list(paths))
    by_path = {source.path: source for source in files}

    raw: list[Finding] = []
    for source in files:
        raw.extend(source.grammar_findings)
        if source.syntax_error is not None:
            exc = source.syntax_error
            raw.append(
                Finding(
                    "LNT003",
                    "error",
                    source.path,
                    exc.lineno or 1,
                    (exc.offset or 0) + 1,
                    f"file does not parse: {exc.msg}",
                )
            )
            continue
        for rule in rules:
            raw.extend(rule.check_file(source))
    if contracts:
        for rule in rules:
            raw.extend(rule.check_project(project))

    kept: list[Finding] = []
    suppressed = 0
    for finding in raw:
        source = by_path.get(finding.path)
        if source is not None and finding.rule.startswith(
            ("DET", "PIK", "CON")
        ):
            if source.suppresses(finding):
                suppressed += 1
                continue
        kept.append(finding)
    for source in files:
        kept.extend(source.unused_suppression_findings())

    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintResult(
        findings=kept, files_scanned=len(files), suppressed=suppressed
    )
