"""``python -m repro.lintx`` — run the analyzer."""

from repro.lintx.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
