"""Kernel-contract cross-checks (``CON3xx``).

Every knob-gated fast path in this codebase ships with five safety
rails, and until this module they were enforced purely by convention:

1. a **degradation guard** in the kernel's module — an ``except``
   handler that records a :class:`~repro.core.resilience.Degradation`
   component via ``.note("<component>", ...)`` and falls back to the
   bit-identical scalar path;
2. a **fault-injection site** — the site name registered in
   :data:`repro.evalx.faultinject.SITES` *and* a ``.consult("<site>")``
   call at the guarded kernel, so the chaos CI leg can prove the guard
   fires;
3. a **CI matrix leg** exercising both sides of the knob (fast path on
   and off) through its ``REPRO_*`` environment default;
4. a **checkpoint-digest classification** — every ``CTSOptions`` field
   is either result-affecting (in ``checkpoint._RESULT_FIELDS``) or
   explicitly execution-only (in ``checkpoint._EXECUTION_FIELDS``);
   a field in neither list would silently make checkpoints lie;
5. a **documented CLI flag** in ``cli.py``.

The pass extracts the knob registry from ``core/options.py`` (every
dataclass field whose ``default_factory`` reads a ``REPRO_*`` variable)
and cross-checks it against the declared contract table below and the
live tree. Adding a new kernel knob without declaring its rails fails
here, at analysis time — not at 3 a.m. when the first degraded
production run needs the fallback that was never wired.

The table is deliberately declarative: the *next* kernel (lockstep
profile expansion, the SoA commit kernel) adds one
:class:`KernelContract` row, and every rule below starts enforcing its
rails for free. ``tests/test_lintx_contracts.py`` asserts the table
matches the shipped tree (self-check) and that each rule fires on a
mutated copy of the tree (mutation checks).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass

from repro.lintx.core import Finding, Project, Rule, SourceFile, register
from repro.lintx.rules_determinism import ImportMap

_OPTIONS_SUFFIX = os.path.join("repro", "core", "options.py")


@dataclass(frozen=True)
class KernelContract:
    """The safety rails one knob-gated kernel must ship with."""

    knob: str  # CTSOptions field name
    env: str  # REPRO_* environment default
    module: str  # kernel module holding the degradation guard
    component: str  # Degradation component the guard records
    fault_site: str  # faultinject.SITES entry + .consult() literal
    cli_flag: str  # documented flag in cli.py
    fast_when: str = "truthy"  # env value semantics: "truthy"|"nonzero"


@dataclass(frozen=True)
class FlowContract:
    """A resilience/flow knob: env-backed and CLI-documented, but not a
    kernel (it *is* part of the safety machinery, so it has no guard or
    fault site of its own)."""

    knob: str
    env: str
    cli_flag: str


KERNEL_CONTRACTS = (
    KernelContract(
        knob="workers",
        env="REPRO_WORKERS",
        module=os.path.join("core", "parallel_merge.py"),
        component="pool",
        fault_site="worker_batch",
        cli_flag="--workers",
        fast_when="nonzero",
    ),
    KernelContract(
        knob="batch_commit",
        env="REPRO_BATCH_COMMIT",
        module=os.path.join("core", "batch_commit.py"),
        component="batch_commit",
        fault_site="batch_commit",
        cli_flag="--no-batch-commit",
    ),
    KernelContract(
        knob="shared_windows",
        env="REPRO_SHARED_WINDOWS",
        module=os.path.join("core", "merge_routing.py"),
        component="shared_windows",
        fault_site="shared_windows",
        cli_flag="--no-shared-windows",
    ),
    KernelContract(
        knob="batch_expansion",
        env="REPRO_BATCH_EXPANSION",
        module=os.path.join("core", "grid_cache.py"),
        component="batch_expansion",
        fault_site="batch_expansion",
        cli_flag="--no-batch-expansion",
    ),
    KernelContract(
        knob="batch_route_finish",
        env="REPRO_BATCH_ROUTE_FINISH",
        module=os.path.join("core", "grid_cache.py"),
        component="batch_route_finish",
        fault_site="route_finish",
        cli_flag="--no-batch-route-finish",
    ),
    KernelContract(
        knob="soa_commit",
        env="REPRO_SOA_COMMIT",
        module=os.path.join("core", "soa_tree.py"),
        component="soa_commit",
        fault_site="soa_commit",
        cli_flag="--no-soa-commit",
    ),
)

FLOW_CONTRACTS = (
    FlowContract("strict", "REPRO_STRICT", "--strict"),
    FlowContract("pool_timeout", "REPRO_POOL_TIMEOUT", "--pool-timeout"),
    FlowContract("fault_plan", "REPRO_FAULT_PLAN", "--fault-plan"),
)

#: Supervision-budget knobs of the batch job runner
#: (:class:`repro.jobs.policy.JobPolicy`). They live outside
#: ``CTSOptions`` — they govern the parent watchdog, never the tree —
#: but carry the same env+CLI contract, enforced by CON308 against
#: ``jobs/policy.py`` instead of ``core/options.py``.
JOB_CONTRACTS = (
    FlowContract("deadline_s", "REPRO_JOB_DEADLINE", "--job-deadline"),
    FlowContract("mem_mb", "REPRO_JOB_MEM_MB", "--job-mem-mb"),
    FlowContract("max_retries", "REPRO_JOB_RETRIES", "--job-retries"),
    FlowContract(
        "heartbeat_stall_s", "REPRO_HEARTBEAT_STALL", "--heartbeat-stall"
    ),
)


# --------------------------------------------------------------------
# Extraction from the live tree
# --------------------------------------------------------------------


@dataclass
class KnobInfo:
    """One env-backed CTSOptions field as found in options.py."""

    name: str
    env: str
    line: int


def extract_env_knobs(
    source: SourceFile, class_name: str = "CTSOptions"
) -> tuple[dict[str, KnobInfo], list[str], int]:
    """The env-knob registry of one options dataclass.

    Returns (env-backed knobs by field name, all field names, class
    line). A knob is a dataclass field whose ``default_factory``
    resolves to a module function reading ``os.environ.get("REPRO_*")``.
    """
    assert source.tree is not None
    imports = ImportMap(source.tree)
    factory_env: dict[str, str] = {}
    for node in source.tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and imports.resolve(sub.func) == "os.environ.get"
                and sub.args
                and isinstance(sub.args[0], ast.Constant)
                and isinstance(sub.args[0].value, str)
                and sub.args[0].value.startswith("REPRO_")
            ):
                factory_env[node.name] = sub.args[0].value
                break

    knobs: dict[str, KnobInfo] = {}
    fields: list[str] = []
    class_line = 1
    for node in source.tree.body:
        if not isinstance(node, ast.ClassDef) or node.name != class_name:
            continue
        class_line = node.lineno
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                stmt.target, ast.Name
            ):
                continue
            name = stmt.target.id
            fields.append(name)
            value = stmt.value
            if not isinstance(value, ast.Call):
                continue
            for kw in value.keywords:
                if (
                    kw.arg == "default_factory"
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id in factory_env
                ):
                    knobs[name] = KnobInfo(
                        name, factory_env[kw.value.id], stmt.lineno
                    )
    return knobs, fields, class_line


def extract_string_tuple(
    source: SourceFile, target_name: str
) -> tuple[list[str], int] | None:
    """A module-level ``NAME = ("a", "b", ...)`` assignment's strings."""
    assert source.tree is not None
    for node in source.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == target_name
            for t in node.targets
        ):
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            values = [
                el.value
                for el in node.value.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            ]
            return values, node.lineno
    return None


def guarded_components(source: SourceFile) -> set[str]:
    """Components recorded by ``.note("<c>", ...)`` calls lexically
    inside ``except`` handlers of this module."""
    assert source.tree is not None
    components: set[str] = set()
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "note"
                and sub.args
                and isinstance(sub.args[0], ast.Constant)
                and isinstance(sub.args[0].value, str)
            ):
                components.add(sub.args[0].value)
    return components


def consulted_sites(project: Project) -> set[str]:
    """Every ``.consult("<site>", ...)`` literal in the scanned tree."""
    sites: set[str] = set()
    for source in project.files:
        if source.tree is None:
            continue
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "consult"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                sites.add(node.args[0].value)
    return sites


def cli_flags(source: SourceFile) -> dict[str, bool]:
    """Every ``add_argument`` flag string -> has a non-empty help."""
    assert source.tree is not None
    flags: dict[str, bool] = {}
    for node in ast.walk(source.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
        ):
            continue
        documented = any(
            kw.arg == "help"
            and isinstance(kw.value, ast.Constant)
            and isinstance(kw.value.value, str)
            and kw.value.value.strip()
            for kw in node.keywords
        )
        for arg in node.args:
            if (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)
                and arg.value.startswith("-")
            ):
                flags[arg.value] = flags.get(arg.value, False) or documented
    return flags


# --------------------------------------------------------------------
# Minimal CI workflow parsing (indentation-based; no yaml dependency)
# --------------------------------------------------------------------


@dataclass
class CIWorkflow:
    """The slice of ci.yml the contract rules need."""

    path: str
    legs: list[dict[str, str]]
    env: dict[str, tuple[str | None, str]]  # REPRO_X -> (matrix key, default)
    include_line: int
    text: str


_ENV_MATRIX_RE = re.compile(
    r"^\s*(?P<var>REPRO_[A-Z_]+):\s*"
    r"\$\{\{\s*matrix\.(?P<key>[A-Za-z_]+)"
    r"(?:\s*\|\|\s*'(?P<default>[^']*)')?\s*\}\}"
)
_ENV_LITERAL_RE = re.compile(
    r"^\s*(?P<var>REPRO_[A-Z_]+):\s*[\"']?(?P<value>[^\"'\s]*)[\"']?\s*$"
)
_KV_RE = re.compile(
    r"^(?P<indent>\s*)(?P<dash>-\s+)?(?P<key>[A-Za-z_.-]+):\s*"
    r"[\"']?(?P<value>[^\"']*)[\"']?\s*$"
)


def parse_ci_workflow(path: str, text: str) -> CIWorkflow:
    legs: list[dict[str, str]] = []
    env: dict[str, tuple[str | None, str]] = {}
    include_line = 1
    in_include = False
    include_indent = 0
    current: dict[str, str] | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        indent = len(line) - len(line.lstrip())
        if stripped == "include:":
            in_include = True
            include_indent = indent
            include_line = lineno
            current = None
            continue
        if in_include:
            if indent <= include_indent:
                in_include = False
                current = None
            else:
                match = _KV_RE.match(line)
                if match:
                    if match.group("dash"):
                        current = {}
                        legs.append(current)
                    if current is not None:
                        current[match.group("key")] = match.group("value")
                continue
        match = _ENV_MATRIX_RE.match(line)
        if match:
            env[match.group("var")] = (
                match.group("key"),
                match.group("default") or "",
            )
            continue
        match = _ENV_LITERAL_RE.match(line)
        if match and match.group("var").startswith("REPRO_"):
            env.setdefault(
                match.group("var"), (None, match.group("value"))
            )
    return CIWorkflow(
        path=path, legs=legs, env=env, include_line=include_line, text=text
    )


def leg_env_value(workflow: CIWorkflow, leg: dict[str, str], env_var: str) -> str:
    """The effective REPRO_* value one matrix leg runs with."""
    mapping = workflow.env.get(env_var)
    if mapping is None:
        return ""
    key, default = mapping
    if key is None:
        return default
    return leg.get(key, "") or default


def is_fast(value: str, fast_when: str) -> bool:
    if fast_when == "nonzero":
        try:
            return int(value or "0") != 0
        except ValueError:
            return False
    return value.lower() not in ("0", "false", "no")


# --------------------------------------------------------------------
# The shared index + rules
# --------------------------------------------------------------------


class ContractIndex:
    """Everything the CON rules cross-check, extracted once per run."""

    def __init__(self, project: Project, options: SourceFile):
        self.project = project
        self.options = options
        self.knobs, self.option_fields, self.class_line = extract_env_knobs(
            options
        )
        prefix = options.path[: -len(_OPTIONS_SUFFIX)]
        self.pkg_prefix = prefix  # .../src/ (or whatever holds repro/)
        root = prefix
        if os.path.basename(os.path.normpath(root)) == "src":
            root = os.path.dirname(os.path.normpath(root))
        self.ci_path = os.path.join(root, ".github", "workflows", "ci.yml")
        self.workflow: CIWorkflow | None = None
        if os.path.exists(self.ci_path):
            with open(self.ci_path, encoding="utf-8") as fh:
                self.workflow = parse_ci_workflow(self.ci_path, fh.read())

    def module(self, suffix: str) -> SourceFile | None:
        """A repro module by path suffix, from the scan or from disk."""
        tail = os.path.join("repro", suffix)
        for source in self.project.files:
            if source.path.endswith(tail):
                return source
        path = os.path.join(self.pkg_prefix, tail)
        if os.path.exists(path):
            return SourceFile.load(path)
        return None


def contract_index(project: Project) -> ContractIndex | None:
    """Build (once) the cross-check index; None when the scanned tree
    has no ``repro/core/options.py`` to anchor the contracts to."""
    cached = getattr(project, "_contract_index", False)
    if cached is not False:
        return cached
    options = None
    for source in project.files:
        if source.path.endswith(_OPTIONS_SUFFIX) and source.tree is not None:
            options = source
            break
    index = ContractIndex(project, options) if options is not None else None
    project._contract_index = index  # type: ignore[attr-defined]
    return index


class _ContractRule(Rule):
    def check_project(self, project: Project) -> list[Finding]:
        index = contract_index(project)
        if index is None:
            return []
        return list(self.check_contracts(index))

    def check_contracts(self, index: ContractIndex):
        raise NotImplementedError


@register
class KnobContractDeclaredRule(_ContractRule):
    id = "CON301"
    severity = "error"
    summary = (
        "every REPRO_*-backed CTSOptions knob must declare its"
        " safety-rail contract (KernelContract/FlowContract)"
    )

    def check_contracts(self, index: ContractIndex):
        declared = {c.knob: c.env for c in KERNEL_CONTRACTS}
        declared.update({c.knob: c.env for c in FLOW_CONTRACTS})
        for name, knob in sorted(index.knobs.items()):
            if name not in declared:
                yield self.finding(
                    index.options.path,
                    knob.line,
                    1,
                    f"knob {name!r} ({knob.env}) has no declared"
                    " contract: add a KernelContract (fast-path kernel)"
                    " or FlowContract (flow/resilience knob) row in"
                    " repro.lintx.contracts and wire its safety rails",
                )
            elif declared[name] != knob.env:
                yield self.finding(
                    index.options.path,
                    knob.line,
                    1,
                    f"knob {name!r} reads {knob.env} but its contract"
                    f" declares {declared[name]}",
                )
        for knob_name in sorted(declared):
            if knob_name not in index.option_fields:
                yield self.finding(
                    index.options.path,
                    index.class_line,
                    1,
                    f"contract table declares knob {knob_name!r} but"
                    " CTSOptions has no such field (stale contract row)",
                )
            elif knob_name not in index.knobs:
                yield self.finding(
                    index.options.path,
                    index.class_line,
                    1,
                    f"contract table declares knob {knob_name!r} as"
                    " env-backed but its field has no REPRO_*"
                    " default_factory",
                )


@register
class DegradationGuardRule(_ContractRule):
    id = "CON302"
    severity = "error"
    summary = (
        "each kernel knob's module must contain a degradation guard:"
        " an except handler recording its component via .note()"
    )

    def check_contracts(self, index: ContractIndex):
        for contract in KERNEL_CONTRACTS:
            module = index.module(contract.module)
            if module is None or module.tree is None:
                yield self.finding(
                    index.options.path,
                    index.class_line,
                    1,
                    f"kernel module repro/{contract.module} for knob"
                    f" {contract.knob!r} not found",
                )
                continue
            if contract.component not in guarded_components(module):
                yield self.finding(
                    module.path,
                    1,
                    1,
                    f"knob {contract.knob!r}: no degradation guard in"
                    f" this module — expected an except handler calling"
                    f" .note({contract.component!r}, ...) before falling"
                    " back to the bit-identical scalar path",
                )


@register
class FaultSiteRule(_ContractRule):
    id = "CON303"
    severity = "error"
    summary = (
        "each kernel knob needs a registered fault site (SITES) with a"
        " live .consult() call; every registered site must be consulted"
    )

    def check_contracts(self, index: ContractIndex):
        fault_mod = index.module(os.path.join("evalx", "faultinject.py"))
        if fault_mod is None or fault_mod.tree is None:
            yield self.finding(
                index.options.path,
                index.class_line,
                1,
                "repro/evalx/faultinject.py not found: the fault-site"
                " registry is gone",
            )
            return
        extracted = extract_string_tuple(fault_mod, "SITES")
        if extracted is None:
            yield self.finding(
                fault_mod.path,
                1,
                1,
                "faultinject.py has no SITES = (...) registry",
            )
            return
        sites, sites_line = extracted
        consulted = consulted_sites(index.project)
        for contract in KERNEL_CONTRACTS:
            if contract.fault_site not in sites:
                yield self.finding(
                    fault_mod.path,
                    sites_line,
                    1,
                    f"knob {contract.knob!r}: fault site"
                    f" {contract.fault_site!r} is not registered in"
                    " SITES — the chaos leg cannot prove its"
                    " degradation guard fires",
                )
            if contract.fault_site not in consulted:
                yield self.finding(
                    fault_mod.path,
                    sites_line,
                    1,
                    f"knob {contract.knob!r}: no"
                    f" .consult({contract.fault_site!r}) call anywhere"
                    " in the tree — the registered fault site is dead",
                )
        for site in sites:
            if site not in consulted:
                covered = any(
                    c.fault_site == site for c in KERNEL_CONTRACTS
                )
                if not covered:
                    yield self.finding(
                        fault_mod.path,
                        sites_line,
                        1,
                        f"registered fault site {site!r} has no"
                        " .consult() call anywhere in the tree",
                    )


@register
class CIMatrixRule(_ContractRule):
    id = "CON304"
    severity = "error"
    summary = (
        "each kernel knob needs CI matrix legs exercising both the fast"
        " path and its fallback through the REPRO_* env default"
    )

    def check_contracts(self, index: ContractIndex):
        workflow = index.workflow
        if workflow is None:
            yield self.finding(
                index.options.path,
                index.class_line,
                1,
                f"no CI workflow at {index.ci_path}: kernel knobs have"
                " no fallback matrix legs",
            )
            return
        for contract in KERNEL_CONTRACTS:
            if contract.env not in workflow.env:
                yield self.finding(
                    workflow.path,
                    1,
                    1,
                    f"knob {contract.knob!r}: {contract.env} is not"
                    " wired into the workflow env block, so no matrix"
                    " leg can toggle it",
                )
                continue
            values = [
                leg_env_value(workflow, leg, contract.env)
                for leg in workflow.legs
            ]
            fast = [is_fast(v, contract.fast_when) for v in values]
            if not any(fast):
                yield self.finding(
                    workflow.path,
                    workflow.include_line,
                    1,
                    f"knob {contract.knob!r}: no matrix leg runs with"
                    " the fast path enabled"
                    f" ({contract.env} always off)",
                )
            if all(fast):
                yield self.finding(
                    workflow.path,
                    workflow.include_line,
                    1,
                    f"knob {contract.knob!r}: no matrix leg disables"
                    f" the fast path ({contract.env}) — the"
                    " bit-identical fallback is never exercised in CI",
                )


@register
class DigestFieldRule(_ContractRule):
    id = "CON305"
    severity = "error"
    summary = (
        "every CTSOptions field must be classified for the checkpoint"
        " digest: result-affecting (_RESULT_FIELDS) xor execution-only"
        " (_EXECUTION_FIELDS)"
    )

    def check_contracts(self, index: ContractIndex):
        checkpoint = index.module(os.path.join("core", "checkpoint.py"))
        if checkpoint is None or checkpoint.tree is None:
            yield self.finding(
                index.options.path,
                index.class_line,
                1,
                "repro/core/checkpoint.py not found: the options-digest"
                " field classification is gone",
            )
            return
        result = extract_string_tuple(checkpoint, "_RESULT_FIELDS")
        execution = extract_string_tuple(checkpoint, "_EXECUTION_FIELDS")
        if result is None:
            yield self.finding(
                checkpoint.path, 1, 1,
                "checkpoint.py has no _RESULT_FIELDS = (...) digest list",
            )
            return
        result_fields, result_line = result
        if execution is None:
            yield self.finding(
                checkpoint.path,
                result_line,
                1,
                "checkpoint.py has no _EXECUTION_FIELDS = (...) list:"
                " digest exclusions must be explicit, not implied",
            )
            execution_fields, execution_line = [], result_line
        else:
            execution_fields, execution_line = execution
        for name in index.option_fields:
            in_result = name in result_fields
            in_execution = name in execution_fields
            if not in_result and not in_execution:
                yield self.finding(
                    checkpoint.path,
                    result_line,
                    1,
                    f"CTSOptions.{name} is in neither _RESULT_FIELDS nor"
                    " _EXECUTION_FIELDS: decide whether it changes the"
                    " synthesized tree (digest) or only how it is"
                    " computed (excluded), and list it",
                )
            elif in_result and in_execution:
                yield self.finding(
                    checkpoint.path,
                    result_line,
                    1,
                    f"CTSOptions.{name} is listed in both _RESULT_FIELDS"
                    " and _EXECUTION_FIELDS",
                )
        for name in result_fields:
            if name not in index.option_fields:
                yield self.finding(
                    checkpoint.path,
                    result_line,
                    1,
                    f"_RESULT_FIELDS lists {name!r} which is not a"
                    " CTSOptions field (stale digest entry)",
                )
        for name in execution_fields:
            if name not in index.option_fields:
                yield self.finding(
                    checkpoint.path,
                    execution_line,
                    1,
                    f"_EXECUTION_FIELDS lists {name!r} which is not a"
                    " CTSOptions field (stale exclusion)",
                )


@register
class CLIFlagRule(_ContractRule):
    id = "CON306"
    severity = "error"
    summary = (
        "every contracted knob needs its documented CLI flag in cli.py"
    )

    def check_contracts(self, index: ContractIndex):
        cli = index.module("cli.py")
        if cli is None or cli.tree is None:
            yield self.finding(
                index.options.path,
                index.class_line,
                1,
                "repro/cli.py not found: contracted knobs have no CLI"
                " surface",
            )
            return
        flags = cli_flags(cli)
        wanted = [(c.knob, c.cli_flag) for c in KERNEL_CONTRACTS]
        wanted += [(c.knob, c.cli_flag) for c in FLOW_CONTRACTS]
        for knob, flag in wanted:
            if flag not in flags:
                yield self.finding(
                    cli.path,
                    1,
                    1,
                    f"knob {knob!r}: CLI flag {flag} is not defined in"
                    " cli.py",
                )
            elif not flags[flag]:
                yield self.finding(
                    cli.path,
                    1,
                    1,
                    f"knob {knob!r}: CLI flag {flag} has no help text",
                )


@register
class JobPolicyContractRule(_ContractRule):
    id = "CON308"
    severity = "error"
    summary = (
        "every REPRO_JOB_*/REPRO_HEARTBEAT_* JobPolicy knob must be"
        " declared in JOB_CONTRACTS with a documented run-batch CLI flag"
    )

    def check_contracts(self, index: ContractIndex):
        policy_mod = index.module(os.path.join("jobs", "policy.py"))
        if policy_mod is None or policy_mod.tree is None:
            if JOB_CONTRACTS:
                yield self.finding(
                    index.options.path,
                    index.class_line,
                    1,
                    "repro/jobs/policy.py not found but JOB_CONTRACTS"
                    " declares job-supervision knobs (stale table)",
                )
            return
        knobs, fields, class_line = extract_env_knobs(
            policy_mod, class_name="JobPolicy"
        )
        declared = {c.knob: c.env for c in JOB_CONTRACTS}
        for name, knob in sorted(knobs.items()):
            if name not in declared:
                yield self.finding(
                    policy_mod.path,
                    knob.line,
                    1,
                    f"JobPolicy knob {name!r} ({knob.env}) has no"
                    " declared contract: add a JOB_CONTRACTS row in"
                    " repro.lintx.contracts and a documented run-batch"
                    " CLI flag",
                )
            elif declared[name] != knob.env:
                yield self.finding(
                    policy_mod.path,
                    knob.line,
                    1,
                    f"JobPolicy knob {name!r} reads {knob.env} but its"
                    f" contract declares {declared[name]}",
                )
        for knob_name in sorted(declared):
            if knob_name not in fields:
                yield self.finding(
                    policy_mod.path,
                    class_line,
                    1,
                    f"JOB_CONTRACTS declares knob {knob_name!r} but"
                    " JobPolicy has no such field (stale contract row)",
                )
            elif knob_name not in knobs:
                yield self.finding(
                    policy_mod.path,
                    class_line,
                    1,
                    f"JOB_CONTRACTS declares knob {knob_name!r} as"
                    " env-backed but its field has no REPRO_*"
                    " default_factory",
                )
        cli = index.module("cli.py")
        if cli is None or cli.tree is None:
            return  # CON306 already reports the missing CLI
        flags = cli_flags(cli)
        for contract in JOB_CONTRACTS:
            if contract.cli_flag not in flags:
                yield self.finding(
                    cli.path,
                    1,
                    1,
                    f"JobPolicy knob {contract.knob!r}: CLI flag"
                    f" {contract.cli_flag} is not defined in cli.py",
                )
            elif not flags[contract.cli_flag]:
                yield self.finding(
                    cli.path,
                    1,
                    1,
                    f"JobPolicy knob {contract.knob!r}: CLI flag"
                    f" {contract.cli_flag} has no help text",
                )


@register
class CIRunsLintRule(_ContractRule):
    id = "CON307"
    severity = "error"
    summary = "the CI workflow must run repro-lint itself"

    def check_contracts(self, index: ContractIndex):
        workflow = index.workflow
        if workflow is None:
            return  # CON304 already reports the missing workflow
        if (
            "repro.lintx" not in workflow.text
            and "repro lint" not in workflow.text
        ):
            yield self.finding(
                workflow.path,
                1,
                1,
                "the workflow never runs the analyzer (python -m"
                " repro.lintx / repro lint): contract rails are"
                " unenforced on push",
            )
