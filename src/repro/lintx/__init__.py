"""repro-lint: static enforcement of the bit-identical fast-path
architecture.

See ANALYSIS.md for the rule catalogue, the suppression grammar and the
"adding a new kernel" checklist. Public API:

- :func:`repro.lintx.core.run_lint` — scan paths, get a
  :class:`~repro.lintx.core.LintResult`;
- :func:`repro.lintx.core.all_rules` — the registered rule set;
- :data:`repro.lintx.contracts.KERNEL_CONTRACTS` — the declared
  safety-rail table every kernel knob is checked against.
"""

from repro.lintx.core import (
    Finding,
    LintResult,
    Rule,
    all_rules,
    run_lint,
)

__all__ = ["Finding", "LintResult", "Rule", "all_rules", "run_lint"]
