"""Command-line front end for repro-lint.

Two equivalent entry points share this module::

    python -m repro.lintx [paths ...]
    python -m repro lint [paths ...]

Exit codes: 0 — no finding at or above ``--fail-on``; 1 — findings at
or above the threshold; 2 — usage error. ``--fail-on never`` turns any
run into a warn-only report (the CI tests/benchmarks scan).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.lintx.core import NEVER, SEVERITIES, run_lint
from repro.lintx.report import render_human, render_json, render_rule_list


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared lint options (used by ``repro lint`` too)."""
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to scan (default: src, or . if there"
        " is no src directory)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the human report",
    )
    parser.add_argument(
        "--fail-on",
        choices=list(SEVERITIES) + [NEVER],
        default="warning",
        help="lowest severity that makes the exit code non-zero"
        " (default: warning; 'never' reports without failing)",
    )
    parser.add_argument(
        "--no-contracts",
        action="store_true",
        help="skip the whole-program contract/picklability passes and"
        " run only the per-file determinism rules",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its severity and summary, then"
        " exit",
    )


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation (shared with ``repro lint``)."""
    if args.list_rules:
        print(render_rule_list())
        return 0
    paths = args.paths or (["src"] if os.path.isdir("src") else ["."])
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    result = run_lint(paths, contracts=not args.no_contracts)
    if args.json:
        print(render_json(result))
    else:
        print(render_human(result))
    return result.exit_code(args.fail_on)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism & kernel-contract analyzer"
        " for the repro tree (see ANALYSIS.md)",
    )
    add_lint_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
