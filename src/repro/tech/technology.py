"""Process/technology parameters shared by simulation and synthesis."""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class WireModel:
    """Per-unit-length electrical properties of the (single) wire type.

    The paper uses one wire type with unit resistance 0.03 Ohm/unit and
    unit capacitance 0.2 fF/unit — 10X the GSRC bookshelf values, chosen to
    mimic big chips with stringent slew constraints.
    """

    resistance_per_unit: float  # Ohm per layout unit
    capacitance_per_unit: float  # Farad per layout unit

    def total_r(self, length: float) -> float:
        """Total resistance of a wire of the given length (Ohm)."""
        return self.resistance_per_unit * length

    def total_c(self, length: float) -> float:
        """Total capacitance of a wire of the given length (Farad)."""
        return self.capacitance_per_unit * length

    def rc_delay(self, length: float, load_cap: float = 0.0) -> float:
        """Distributed Elmore delay of the wire driving ``load_cap``.

        ``0.5 * R * C + R * C_load`` — the standard distributed-RC Elmore
        expression, used for coarse estimates only (Ch. 3 of the paper shows
        it is too inaccurate for CTS, which is why the characterized library
        exists).
        """
        r = self.total_r(length)
        return r * (0.5 * self.total_c(length) + load_cap)

    def scaled(self, factor: float) -> "WireModel":
        """Wire with both R and C scaled by ``factor`` (the paper's 10X)."""
        return WireModel(
            self.resistance_per_unit * factor,
            self.capacitance_per_unit * factor,
        )


@dataclass(frozen=True)
class Technology:
    """A process corner for the mini-SPICE substrate.

    MOSFET parameters follow the Sakurai-Newton alpha-power law, which is
    the standard compact model for hand analysis of short-channel CMOS; it
    reproduces the behaviours the paper's flow depends on (slew-dependent
    intrinsic delay, curved output waveforms, saturation-limited drive).

    Transistor strength/capacitance values are *per relative width unit*
    ("1X"); a buffer of size kX scales currents and caps by k.
    """

    name: str
    vdd: float  # supply voltage (V)
    # Alpha-power-law parameters, per 1X of relative device width.
    nmos_vth: float  # NMOS threshold (V)
    pmos_vth: float  # PMOS threshold magnitude (V)
    alpha: float  # velocity-saturation index (2.0 = long channel)
    nmos_k: float  # NMOS saturation transconductance (A / V^alpha per X)
    pmos_k: float  # PMOS saturation transconductance (A / V^alpha per X)
    # Device capacitances per X of width.
    gate_cap_per_x: float  # gate capacitance of a 1X inverter input (F)
    drain_cap_per_x: float  # drain/diffusion capacitance at a 1X output (F)
    wire: WireModel = field(
        default_factory=lambda: WireModel(0.03, 0.2e-15)
    )
    # Measurement thresholds (fractions of Vdd).
    slew_lo: float = 0.1
    slew_hi: float = 0.9
    delay_threshold: float = 0.5

    def with_wire_scaling(self, factor: float) -> "Technology":
        """Copy of this technology with wire R and C scaled by ``factor``."""
        return replace(self, wire=self.wire.scaled(factor))

    def logic_threshold_voltage(self) -> float:
        """Voltage of the delay-measurement threshold (50% Vdd)."""
        return self.delay_threshold * self.vdd

    def slew_window_voltages(self) -> tuple[float, float]:
        """Low/high voltages bounding the slew measurement window."""
        return (self.slew_lo * self.vdd, self.slew_hi * self.vdd)
