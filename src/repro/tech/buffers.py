"""Buffer types and buffer libraries.

Each buffer is two cascaded inverters (as in the paper, Sec. 3.2): the
first inverter is ``size/stage_ratio`` X wide, the second ``size`` X, so
the buffer presents a small input capacitance while driving a large load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.technology import Technology


@dataclass(frozen=True)
class BufferType:
    """A named buffer of a given drive strength.

    ``size`` is the relative width (in X) of the *output* inverter;
    ``stage_ratio`` divides it for the input inverter.
    """

    name: str
    size: float  # output inverter width, in X
    stage_ratio: float = 4.0  # output width / input width

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"buffer size must be positive: {self}")
        if self.stage_ratio < 1:
            raise ValueError(f"stage ratio must be >= 1: {self}")

    @property
    def input_size(self) -> float:
        """Width (X) of the first inverter."""
        return max(1.0, self.size / self.stage_ratio)

    def input_cap(self, tech: Technology) -> float:
        """Gate capacitance presented at the buffer input (F)."""
        return tech.gate_cap_per_x * self.input_size

    def output_cap(self, tech: Technology) -> float:
        """Parasitic drain capacitance at the buffer output (F)."""
        return tech.drain_cap_per_x * self.size

    def drive_resistance(self, tech: Technology) -> float:
        """Effective switching resistance of the output inverter (Ohm).

        First-order estimate ``Vdd / (2 * Idsat)`` using the alpha-power
        saturation current at Vgs = Vdd; used for coarse estimates (e.g.
        Elmore-based baselines), never for the characterized library.
        """
        overdrive = tech.vdd - tech.nmos_vth
        idsat = tech.nmos_k * self.size * overdrive**tech.alpha
        return tech.vdd / (2.0 * idsat)

    def __str__(self) -> str:
        return self.name


class BufferLibrary:
    """An ordered collection of buffer types, smallest first."""

    def __init__(self, buffers: list[BufferType]):
        if not buffers:
            raise ValueError("empty buffer library")
        names = [b.name for b in buffers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate buffer names: {names}")
        self._buffers = sorted(buffers, key=lambda b: b.size)
        self._by_name = {b.name: b for b in self._buffers}

    def __iter__(self):
        return iter(self._buffers)

    def __len__(self) -> int:
        return len(self._buffers)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> BufferType:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown buffer {name!r}; library has {sorted(self._by_name)}"
            ) from None

    @property
    def names(self) -> list[str]:
        return [b.name for b in self._buffers]

    @property
    def smallest(self) -> BufferType:
        return self._buffers[0]

    @property
    def largest(self) -> BufferType:
        return self._buffers[-1]

    def by_size(self) -> list[BufferType]:
        """Buffers ordered by increasing drive strength."""
        return list(self._buffers)

    def closest_by_input_cap(self, cap: float, tech: Technology) -> BufferType:
        """Buffer whose input capacitance is nearest to ``cap``.

        The paper approximates components ending at a *sink* by a component
        ending at the buffer of most similar load capacitance (Sec. 3.2.1);
        this is the lookup that implements that approximation.
        """
        return min(self._buffers, key=lambda b: abs(b.input_cap(tech) - cap))

    def subset(self, names: list[str]) -> "BufferLibrary":
        return BufferLibrary([self[name] for name in names])
