"""Technology description: wire RC, supply, and the buffer library.

The paper uses 45 nm PTM transistor models with GSRC wire parasitics scaled
10X (0.03 Ohm/unit, 0.2 fF/unit) so that slew degrades quickly with wire
length and buffer insertion along routing paths becomes mandatory. This
package provides an equivalent technology description for the bundled
mini-SPICE substrate.
"""

from repro.tech.technology import Technology, WireModel
from repro.tech.buffers import BufferType, BufferLibrary
from repro.tech.presets import (
    default_technology,
    default_buffer_library,
    cts_buffer_library,
    sizing_sweep_library,
)

__all__ = [
    "Technology",
    "WireModel",
    "BufferType",
    "BufferLibrary",
    "default_technology",
    "default_buffer_library",
    "cts_buffer_library",
    "sizing_sweep_library",
]
