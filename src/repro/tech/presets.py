"""Ready-made technology and buffer-library presets.

``default_technology`` approximates a 45 nm process the way the paper's
PTM-based setup does: 1.0 V supply, ~0.3 V thresholds, velocity-saturated
alpha ~ 1.4, and drive currents calibrated so a 20X buffer has an effective
switching resistance of roughly 100 Ohm — which, against the paper's
10X-scaled GSRC wire (0.03 Ohm/unit, 0.2 fF/unit), yields the same regime
as the paper: ps-scale stage delays, slew-limited stage lengths of a couple
thousand units, ns-scale tree latencies.
"""

from __future__ import annotations

from repro.tech.buffers import BufferLibrary, BufferType
from repro.tech.technology import Technology, WireModel

#: GSRC bookshelf wire parasitics (per unit) before the paper's 10X scaling.
GSRC_UNIT_RESISTANCE = 0.003  # Ohm / unit
GSRC_UNIT_CAPACITANCE = 0.02e-15  # F / unit

#: The paper's stress factor applied on top of the GSRC values.
PAPER_WIRE_SCALE = 10.0


def default_technology(wire_scale: float = PAPER_WIRE_SCALE) -> Technology:
    """The 45 nm-style process used throughout the reproduction.

    ``wire_scale`` multiplies the GSRC per-unit wire R and C; the paper
    uses 10X ("mimics bigger chips that incur stringent slew constraints").
    """
    wire = WireModel(
        GSRC_UNIT_RESISTANCE * wire_scale,
        GSRC_UNIT_CAPACITANCE * wire_scale,
    )
    return Technology(
        name=f"ptm45-like-w{wire_scale:g}x",
        vdd=1.0,
        nmos_vth=0.30,
        pmos_vth=0.32,
        alpha=1.4,
        # Calibrated so Reff(20X) ~ 100 Ohm: Idsat(1X) = K * 0.7^1.4.
        nmos_k=4.1e-4,
        pmos_k=4.1e-4,
        gate_cap_per_x=1.5e-15,
        drain_cap_per_x=0.9e-15,
        wire=wire,
    )


def cts_buffer_library() -> BufferLibrary:
    """The 3-buffer library the paper synthesizes with (Sec. 5.1)."""
    return BufferLibrary(
        [
            BufferType("BUF10X", 10.0),
            BufferType("BUF20X", 20.0),
            BufferType("BUF30X", 30.0),
        ]
    )


def default_buffer_library() -> BufferLibrary:
    """Alias for :func:`cts_buffer_library` (the library used by CTS)."""
    return cts_buffer_library()


def sizing_sweep_library() -> BufferLibrary:
    """A wider size sweep for characterization studies (Fig. 1.1 etc.)."""
    return BufferLibrary(
        [
            BufferType("BUF2X", 2.0),
            BufferType("BUF5X", 5.0),
            BufferType("BUF10X", 10.0),
            BufferType("BUF20X", 20.0),
            BufferType("BUF30X", 30.0),
            BufferType("BUF40X", 40.0),
        ]
    )
