"""Baseline CTS algorithms the paper builds on / compares against.

- :mod:`repro.baselines.dme` — the classic Deferred-Merge Embedding flow
  (Chao et al.) with Tsay's exact zero-skew merge under the Elmore model
  and Edahiro-style nearest-neighbor topology (Sec. 2.2 of the paper);
  unbuffered.
- :mod:`repro.baselines.merge_buffer` — buffered clock tree synthesis
  with buffers restricted to merge nodes, standing in for the comparison
  rows [6] (Chen-Wong), [8] (Chaturvedi-Hu) and [16] (Rajaram-Pan) of
  Table 5.1; three sizing policies model the spread between them.
"""

from repro.baselines.dme import DMESynthesizer, zero_skew_merge_point
from repro.baselines.merge_buffer import (
    MergeBufferCTS,
    MergeBufferPolicy,
    COMPARISON_POLICIES,
)
from repro.baselines.htree import HTreeSynthesizer, HTreeResult
from repro.baselines.bst import BoundedSkewDME, BSTResult

__all__ = [
    "DMESynthesizer",
    "zero_skew_merge_point",
    "MergeBufferCTS",
    "MergeBufferPolicy",
    "COMPARISON_POLICIES",
    "HTreeSynthesizer",
    "HTreeResult",
    "BoundedSkewDME",
    "BSTResult",
]
