"""Deferred-Merge Embedding with exact zero-skew merges (Sec. 2.2).

The classic two-phase algorithm the paper reviews as background and
departs from:

- *bottom-up*: every sub-tree is represented by a merge segment (a
  Manhattan arc of candidate merge locations); merging two sub-trees
  computes the tapping ratio ``x`` of Eq. 2.5 that equalizes the Elmore
  delays of both sides, producing the next merge segment. When no point
  on the straight connection balances the delays (x outside [0, 1]), the
  merge sits on the slower side's segment and the other wire is extended
  (wire snaking) by solving the resulting quadratic.
- *top-down*: exact merge locations are chosen nearest to the already
  embedded parent, honoring the recorded wire lengths.

The output tree is unbuffered and zero-skew **under the Elmore model** —
exactly the kind of result whose "true" (simulated) skew and slew the
paper shows to be inadequate, motivating the library-driven flow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geom.manhattan_arc import ManhattanArc, merge_arc
from repro.geom.point import Point, centroid
from repro.tech.technology import Technology
from repro.tree.clocktree import ClockTree
from repro.tree.nodes import TreeNode, make_merge, make_sink


def zero_skew_merge_point(
    t1: float,
    t2: float,
    c1: float,
    c2: float,
    distance: float,
    alpha: float,
    beta: float,
) -> float:
    """Tsay's tapping ratio (Eq. 2.5 of the paper).

    ``alpha``/``beta`` are wire unit resistance/capacitance; returns the
    (possibly out-of-range) ratio ``x`` so the merge point sits ``x *
    distance`` from sub-tree 1.
    """
    if distance <= 0:
        raise ValueError("distance must be positive")
    denom = alpha * distance * (c1 + c2 + beta * distance)
    if denom == 0:
        return 0.5
    return ((t2 - t1) + alpha * distance * (c2 + beta * distance / 2.0)) / denom


def _closest_point_between(arc: ManhattanArc, other: ManhattanArc) -> Point:
    """The point of ``arc`` nearest to ``other`` (closest-approach tap)."""
    best_t, best_d = 0.0, float("inf")
    for i in range(9):
        t = i / 8.0
        d = other.distance_to_point(arc.sample(t))
        if d < best_d:
            best_t, best_d = t, d
    return arc.sample(best_t)


def _extension_length(
    t_fast: float, t_slow: float, c_fast: float, alpha: float, beta: float
) -> float:
    """Wire length that delays the fast side by ``t_slow - t_fast``.

    Solves ``alpha * l * (beta * l / 2 + c_fast) = t_slow - t_fast``.
    """
    need = t_slow - t_fast
    if need <= 0:
        return 0.0
    a = alpha * beta / 2.0
    b = alpha * c_fast
    disc = b * b + 4.0 * a * need
    return (-b + math.sqrt(disc)) / (2.0 * a)


@dataclass
class _MergeState:
    """Bottom-up bookkeeping for one sub-tree."""

    arc: ManhattanArc
    delay: float  # Elmore delay from the merge segment to any sink
    cap: float  # downstream capacitance
    node: TreeNode  # tree node (location fixed top-down later)
    edge_lengths: tuple[float, float] | None  # wire lengths to children


class DMESynthesizer:
    """Classic DME zero-skew synthesis (unbuffered baseline)."""

    def __init__(self, tech: Technology):
        self.tech = tech
        self.alpha = tech.wire.resistance_per_unit
        self.beta = tech.wire.capacitance_per_unit

    # ------------------------------------------------------------------

    def synthesize(self, sinks: list[tuple[Point, float]]) -> ClockTree:
        states = [
            _MergeState(
                ManhattanArc.point(pt),
                0.0,
                cap,
                make_sink(pt, cap, name=f"s{i}"),
                None,
            )
            for i, (pt, cap) in enumerate(sinks)
        ]
        center = centroid([pt for pt, __ in sinks])
        while len(states) > 1:
            states = self._merge_level(states, center)
        root_state = states[0]
        root_point = root_state.arc.closest_point_to(center)
        self._embed(root_state, root_point)
        return ClockTree.from_network(root_point, root_state.node)

    # ------------------------------------------------------------------

    def _merge_level(
        self, states: list[_MergeState], center: Point
    ) -> list[_MergeState]:
        """Nearest-neighbor pairing (Edahiro-flavored greedy matching)."""
        remaining = sorted(
            states,
            key=lambda s: s.arc.closest_point_to(center).manhattan_to(center),
            reverse=True,
        )
        out: list[_MergeState] = []
        if len(remaining) % 2 == 1:
            # Promote the deepest sub-tree unmatched.
            seed = max(remaining, key=lambda s: s.delay)
            remaining.remove(seed)
            out.append(seed)
        while remaining:
            anchor = remaining.pop(0)
            partner = min(remaining, key=lambda s: anchor.arc.distance_to(s.arc))
            remaining.remove(partner)
            out.append(self._merge_pair(anchor, partner))
        return out

    def _merge_pair(self, s1: _MergeState, s2: _MergeState) -> _MergeState:
        distance = max(s1.arc.distance_to(s2.arc), 1e-9)
        x = zero_skew_merge_point(
            s1.delay, s2.delay, s1.cap, s2.cap, distance, self.alpha, self.beta
        )
        if 0.0 <= x <= 1.0:
            d1, d2 = x * distance, (1.0 - x) * distance
            arc = merge_arc(s1.arc, s2.arc, d1, d2)
            delay = s1.delay + self._wire_delay(d1, s1.cap)
        elif x < 0.0:
            # Side 1 is slower: tap on its segment, extend wire to side 2.
            # The merge segment collapses to the closest-approach point:
            # farther points of the slow arc exceed `distance` to the fast
            # arc and would break the recorded wire-length bookkeeping in
            # the top-down phase.
            d1 = 0.0
            d2 = max(
                distance,
                _extension_length(s2.delay, s1.delay, s2.cap, self.alpha, self.beta),
            )
            arc = ManhattanArc.point(_closest_point_between(s1.arc, s2.arc))
            delay = s1.delay
        else:
            d2 = 0.0
            d1 = max(
                distance,
                _extension_length(s1.delay, s2.delay, s1.cap, self.alpha, self.beta),
            )
            arc = ManhattanArc.point(_closest_point_between(s2.arc, s1.arc))
            delay = s2.delay
        node = make_merge(Point(0.0, 0.0))  # located during top-down phase
        node.children = [s1.node, s2.node]
        s1.node.parent = node
        s2.node.parent = node
        cap = s1.cap + s2.cap + self.beta * (d1 + d2)
        merged = _MergeState(arc, delay, cap, node, (d1, d2))
        node._dme_children_states = (s1, s2)  # type: ignore[attr-defined]
        return merged

    def _wire_delay(self, length: float, load_cap: float) -> float:
        return self.alpha * length * (self.beta * length / 2.0 + load_cap)

    # ------------------------------------------------------------------

    def _embed(self, state: _MergeState, location: Point) -> None:
        """Top-down phase: fix exact positions nearest to the parent."""
        node = state.node
        node.location = location
        if state.edge_lengths is None:
            return
        s1, s2 = node._dme_children_states  # type: ignore[attr-defined]
        d1, d2 = state.edge_lengths
        for child_state, length in ((s1, d1), (s2, d2)):
            child_point = child_state.arc.closest_point_to(location)
            child_state.node.wire_to_parent = max(
                length, location.manhattan_to(child_point)
            )
            self._embed(child_state, child_point)
        del node._dme_children_states  # type: ignore[attr-defined]
