"""Bounded-Skew Tree (BST) synthesis — the merge-region baseline (ref [4]).

Cong, Kahng, Koh and Tsao's bounded-skew extension of DME: instead of
forcing exact zero Elmore skew at every merge (which costs wire snaking
whenever the tapping point formula leaves [0, 1]), a skew *budget* B is
maintained. Each sub-tree carries a delay interval [d_min, d_max]; a
merge chooses the tapping ratio that keeps the merged interval within B
while snaking only the shortfall beyond the budget — so wirelength
decreases monotonically as B grows, the classic BST trade-off.

This simplified implementation keeps merge segments as Manhattan arcs
(full BST generalizes them to merge regions); the wirelength-vs-budget
behaviour, which is what the paper's background chapter discusses, is
preserved. Delays are Elmore, as in the original.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.dme import _closest_point_between, _extension_length
from repro.geom.manhattan_arc import ManhattanArc, merge_arc
from repro.geom.point import Point, centroid
from repro.tech.technology import Technology
from repro.tree.clocktree import ClockTree
from repro.tree.nodes import TreeNode, make_merge, make_sink


@dataclass
class _BSTState:
    """Bottom-up bookkeeping: arc, Elmore delay interval, load cap."""

    arc: ManhattanArc
    d_min: float
    d_max: float
    cap: float
    node: TreeNode
    edge_lengths: tuple[float, float] | None


@dataclass
class BSTResult:
    tree: ClockTree
    runtime: float
    skew_bound: float


class BoundedSkewDME:
    """Bounded-skew DME with Manhattan-arc merge segments."""

    def __init__(self, tech: Technology, skew_bound: float):
        if skew_bound < 0:
            raise ValueError("skew bound must be non-negative")
        self.tech = tech
        self.bound = skew_bound
        self.alpha = tech.wire.resistance_per_unit
        self.beta = tech.wire.capacitance_per_unit

    # ------------------------------------------------------------------

    def synthesize(self, sinks: list[tuple[Point, float]]) -> BSTResult:
        t0 = time.perf_counter()
        states = [
            _BSTState(
                ManhattanArc.point(pt), 0.0, 0.0, cap,
                make_sink(pt, cap, name=f"s{i}"), None,
            )
            for i, (pt, cap) in enumerate(sinks)
        ]
        center = centroid([pt for pt, __ in sinks])
        while len(states) > 1:
            states = self._merge_level(states, center)
        root_state = states[0]
        root_point = root_state.arc.closest_point_to(center)
        self._embed(root_state, root_point)
        tree = ClockTree.from_network(root_point, root_state.node)
        return BSTResult(tree, time.perf_counter() - t0, self.bound)

    # ------------------------------------------------------------------

    def _wire_delay(self, length: float, load_cap: float) -> float:
        return self.alpha * length * (self.beta * length / 2.0 + load_cap)

    def _merged_interval(
        self, s1: _BSTState, s2: _BSTState, l1: float, l2: float
    ) -> tuple[float, float]:
        d1 = self._wire_delay(l1, s1.cap)
        d2 = self._wire_delay(l2, s2.cap)
        return (
            min(s1.d_min + d1, s2.d_min + d2),
            max(s1.d_max + d1, s2.d_max + d2),
        )

    def _merge_pair(self, s1: _BSTState, s2: _BSTState) -> _BSTState:
        """Merge two sub-trees keeping the Elmore spread within budget.

        Aligning the two delay-interval *tops* makes the merged spread
        ``max(spread1, spread2)``; the wire split controls the alignment
        offset ``d(l1, c1) - d(l2, c2)``, which is continuous and strictly
        increasing in the tapping ratio, so an exact split is found by
        bisection whenever the straight connection suffices. The unused
        budget ``B - max(spread1, spread2)`` is *slack* that shortens (or
        avoids) wire snaking in the detour cases — the BST wire saving.
        """
        dist = max(s1.arc.distance_to(s2.arc), 1e-9)
        target = s2.d_max - s1.d_max  # required offset to align tops
        slack = max(0.0, self.bound - max(s1.d_max - s1.d_min, s2.d_max - s2.d_min))

        def offset(x: float) -> float:
            return self._wire_delay(x * dist, s1.cap) - self._wire_delay(
                (1.0 - x) * dist, s2.cap
            )

        lo_off, hi_off = offset(0.0), offset(1.0)
        if target - slack > hi_off:
            # Side 2 is slower than any straight split can compensate:
            # all wire (possibly snaked) on side 1, tapped on side 2's
            # arc at the closest-approach point (see dme.py for why the
            # full arc would break wire-length bookkeeping).
            d1 = max(
                dist,
                _extension_length(
                    0.0, target - slack, s1.cap, self.alpha, self.beta
                ),
            )
            d2 = 0.0
            arc = ManhattanArc.point(_closest_point_between(s2.arc, s1.arc))
        elif target + slack < lo_off:
            d2 = max(
                dist,
                _extension_length(
                    0.0, -(target + slack), s2.cap, self.alpha, self.beta
                ),
            )
            d1 = 0.0
            arc = ManhattanArc.point(_closest_point_between(s1.arc, s2.arc))
        else:
            # Feasible without detour: bisect the monotone offset to the
            # admissible value nearest the exact alignment.
            aim = min(max(target, lo_off), hi_off)
            lo_x, hi_x = 0.0, 1.0
            for _ in range(60):
                mid = (lo_x + hi_x) / 2.0
                if offset(mid) < aim:
                    lo_x = mid
                else:
                    hi_x = mid
            x = (lo_x + hi_x) / 2.0
            d1, d2 = x * dist, (1.0 - x) * dist
            arc = merge_arc(s1.arc, s2.arc, d1, d2)
        lo, hi = self._merged_interval(s1, s2, d1, d2)
        node = make_merge(Point(0.0, 0.0))
        node.children = [s1.node, s2.node]
        s1.node.parent = node
        s2.node.parent = node
        cap = s1.cap + s2.cap + self.beta * (d1 + d2)
        merged = _BSTState(arc, lo, hi, cap, node, (d1, d2))
        node._bst_children = (s1, s2)  # type: ignore[attr-defined]
        return merged

    def _merge_level(self, states: list[_BSTState], center: Point) -> list[_BSTState]:
        remaining = sorted(
            states,
            key=lambda s: s.arc.closest_point_to(center).manhattan_to(center),
            reverse=True,
        )
        out: list[_BSTState] = []
        if len(remaining) % 2 == 1:
            seed = max(remaining, key=lambda s: s.d_max)
            remaining.remove(seed)
            out.append(seed)
        while remaining:
            anchor = remaining.pop(0)
            partner = min(remaining, key=lambda s: anchor.arc.distance_to(s.arc))
            remaining.remove(partner)
            out.append(self._merge_pair(anchor, partner))
        return out

    # ------------------------------------------------------------------

    def _embed(self, state: _BSTState, location: Point) -> None:
        node = state.node
        node.location = location
        if state.edge_lengths is None:
            return
        s1, s2 = node._bst_children  # type: ignore[attr-defined]
        d1, d2 = state.edge_lengths
        for child_state, length in ((s1, d1), (s2, d2)):
            child_point = child_state.arc.closest_point_to(location)
            child_state.node.wire_to_parent = max(
                length, location.manhattan_to(child_point)
            )
            self._embed(child_state, child_point)
        del node._bst_children  # type: ignore[attr-defined]
