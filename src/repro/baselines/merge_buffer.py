"""Merge-node-only buffered CTS — the comparison baselines of Table 5.1.

Stands in for the works the paper compares against ([6] Chen-Wong'96,
[8] Chaturvedi-Hu'04, [16] Rajaram-Pan'06): clock tree routing integrated
with buffer insertion, but with buffers allowed *only at merge nodes* —
the restriction whose inadequacy under stressed wire parasitics motivates
the paper. The flow mirrors the aggressive CTS (same levelized topology,
same timing engine) except that merge-routing is replaced by a direct
zero-skew-style merge, and a buffer may be placed only on the merge node
when the policy's capacitance trigger fires.

Three policies model the spread between the three publications (eager /
balanced / lazy buffering with different sizing rules); the reproduced
comparison is therefore *our implementation of their restriction*, not
their absolute published numbers — see DESIGN.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.charlib.build import load_default_library
from repro.charlib.library import DelaySlewLibrary
from repro.core.topology import EdgeCost, SubTree, greedy_matching
from repro.core.options import CTSOptions
from repro.geom.point import Point, centroid
from repro.tech.buffers import BufferLibrary
from repro.tech.presets import cts_buffer_library, default_technology
from repro.tech.technology import Technology
from repro.timing.analysis import LibraryTimingEngine
from repro.tree.clocktree import ClockTree
from repro.tree.nodes import TreeNode, make_buffer, make_merge, make_sink


@dataclass(frozen=True)
class MergeBufferPolicy:
    """How a merge-node-only baseline inserts and sizes buffers."""

    name: str
    cap_trigger_x: float  # buffer when collapsed cap > this x largest input cap
    sizing: str  # "fixed-middle" | "largest" | "smallest-feasible" | "proportional"

    def __post_init__(self) -> None:
        if self.sizing not in (
            "fixed-middle",
            "largest",
            "smallest-feasible",
            "proportional",
        ):
            raise ValueError(f"unknown sizing rule {self.sizing!r}")


#: Policies standing in for the three comparison rows of Table 5.1.
COMPARISON_POLICIES = {
    # [6] Chen-Wong'96: one buffer type inserted as merges require.
    "chen-wong96": MergeBufferPolicy("chen-wong96", 1.0, "fixed-middle"),
    # [8] Chaturvedi-Hu'04: buffered clock tree with strong drivers.
    "chaturvedi-hu04": MergeBufferPolicy("chaturvedi-hu04", 2.0, "largest"),
    # [16] Rajaram-Pan'06: later work, tighter slew-aware sizing.
    "rajaram-pan06": MergeBufferPolicy("rajaram-pan06", 1.5, "smallest-feasible"),
}


@dataclass
class MergeBufferResult:
    tree: ClockTree
    runtime: float
    policy: MergeBufferPolicy


class MergeBufferCTS:
    """Buffered CTS with buffer locations restricted to merge nodes."""

    def __init__(
        self,
        policy: MergeBufferPolicy,
        tech: Technology | None = None,
        buffers: BufferLibrary | None = None,
        library: DelaySlewLibrary | None = None,
        options: CTSOptions | None = None,
    ):
        self.policy = policy
        self.tech = tech or default_technology()
        self.buffers = buffers or cts_buffer_library()
        self.library = library or load_default_library(self.tech)
        self.options = options or CTSOptions()
        self.engine = LibraryTimingEngine(self.library, self.tech)
        largest = self.library.buffer_names[-1]
        self._cap_trigger = policy.cap_trigger_x * self.library.input_cap(largest)
        # Delay-per-unit estimate for the cost function (reuse library).
        timing = self.library.single_wire(largest, largest, self.options.target_slew, 2000.0)
        self._cost = EdgeCost(self.options, timing.total_delay / 2000.0)

    # ------------------------------------------------------------------

    def synthesize(self, sinks: list[tuple[Point, float]]) -> MergeBufferResult:
        t0 = time.perf_counter()
        level = [
            SubTree(make_sink(pt, cap, name=f"s{i}"), None)
            for i, (pt, cap) in enumerate(sinks)
        ]
        for sub in level:
            sub.bounds = self.engine.subtree_bounds(
                sub.root, self.options.target_slew
            )
        center = centroid([pt for pt, __ in sinks])
        while len(level) > 1:
            pairs, seed = greedy_matching(level, center, self._cost)
            next_level = [seed] if seed else []
            for a, b in pairs:
                root = self._merge(a.root, b.root)
                next_level.append(
                    SubTree(root, self.engine.subtree_bounds(root, self.options.target_slew))
                )
            level = next_level
        root = level[0].root
        tree = ClockTree.from_network(root.location, root)
        return MergeBufferResult(tree, time.perf_counter() - t0, self.policy)

    # ------------------------------------------------------------------

    def _merge(self, a: TreeNode, b: TreeNode) -> TreeNode:
        """Balanced merge with an optional buffer on the merge node only."""
        pos, len_a, len_b = self._balance_point(a, b)
        merge = make_merge(pos)
        merge.attach(a, len_a)
        merge.attach(b, len_b)
        cap = self.engine._load_cap_of(merge)
        if cap <= self._cap_trigger:
            return merge
        buf = make_buffer(pos, self._choose_size(cap))
        buf.attach(merge, 0.0)
        return buf

    def _balance_point(self, a: TreeNode, b: TreeNode) -> tuple[Point, float, float]:
        """Slide the merge point along a--b to equalize engine delays."""
        pa, pb = a.location, b.location
        dist = pa.manhattan_to(pb)
        bounds_a = self.engine.subtree_bounds(a, self.options.target_slew)
        bounds_b = self.engine.subtree_bounds(b, self.options.target_slew)
        if dist <= 0:
            return pa, 0.0, 0.0

        def diff(r: float) -> float:
            timing = self.library.branch_component(
                self.library.buffer_names[-1],
                self.options.target_slew,
                0.0,
                r * dist,
                (1.0 - r) * dist,
                self.engine._load_cap_of(a),
                self.engine._load_cap_of(b),
            )
            return (timing.left_delay + bounds_a.max_delay) - (
                timing.right_delay + bounds_b.max_delay
            )

        lo, hi = 0.0, 1.0
        if diff(0.0) >= 0:
            r = 0.0
        elif diff(1.0) <= 0:
            r = 1.0
        else:
            for _ in range(20):
                r = (lo + hi) / 2.0
                if diff(r) < 0:
                    lo = r
                else:
                    hi = r
            r = (lo + hi) / 2.0
        return pa.lerp(pb, r), r * dist, (1.0 - r) * dist

    def _choose_size(self, cap: float):
        ordered = self.buffers.by_size()
        if self.policy.sizing == "largest":
            return ordered[-1]
        if self.policy.sizing == "fixed-middle":
            return ordered[len(ordered) // 2]
        if self.policy.sizing == "proportional":
            largest_cap = self.library.input_cap(self.library.buffer_names[-1])
            idx = min(
                len(ordered) - 1, int(cap / (2.0 * largest_cap) * len(ordered))
            )
            return ordered[idx]
        # smallest-feasible: smallest whose direct-drive slew meets target.
        target = self.options.target_slew
        for buf in ordered:
            slew = self.library.single_wire(
                buf.name, self.library.load_name_for_cap(cap), target, 0.0
            ).wire_slew
            if slew <= target:
                return buf
        return ordered[-1]
