"""Symmetric H-tree clock distribution baseline.

The classic regular alternative the paper's related work mentions
(symmetric topologies, e.g. Shih & Chang's timing-model-independent
buffered trees, DAC 2010 [19]): a recursive H fractal spans the die, each
level halving the span, and every sink attaches to its nearest H-leaf.
Perfect symmetry gives near-zero skew *to the leaves* by construction —
the skew then comes from the uneven last-mile attachments, and wirelength
is spent on covering the die regardless of where the sinks actually are.

Buffering reuses the paper's machinery: each H edge is slew-checked with
the characterized library and buffers are spliced in where needed, so the
comparison against the aggressive flow isolates the *topology* choice.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.charlib.build import load_default_library
from repro.charlib.library import DelaySlewLibrary
from repro.core.options import CTSOptions
from repro.geom.bbox import BBox
from repro.geom.point import Point
from repro.tech.buffers import BufferLibrary
from repro.tech.presets import cts_buffer_library, default_technology
from repro.tech.technology import Technology
from repro.tree.clocktree import ClockTree
from repro.tree.nodes import (
    NodeKind,
    TreeNode,
    make_buffer,
    make_sink,
    make_steiner,
)


@dataclass
class HTreeResult:
    tree: ClockTree
    runtime: float
    levels: int


class HTreeSynthesizer:
    """Regular buffered H-tree over the sink bounding box."""

    def __init__(
        self,
        tech: Technology | None = None,
        buffers: BufferLibrary | None = None,
        library: DelaySlewLibrary | None = None,
        options: CTSOptions | None = None,
    ):
        self.tech = tech or default_technology()
        self.buffers = buffers or cts_buffer_library()
        self.library = library or load_default_library(self.tech)
        self.options = options or CTSOptions()

    # ------------------------------------------------------------------

    def synthesize(self, sinks: list[tuple[Point, float]]) -> HTreeResult:
        t0 = time.perf_counter()
        if not sinks:
            raise ValueError("need at least one sink")
        box = BBox.of_points([p for p, __ in sinks])
        levels = max(1, math.ceil(math.log2(max(len(sinks), 2)) / 2))
        center = box.center
        root = make_steiner(center, name="h_root")
        leaves: list[TreeNode] = []
        self._grow(root, box.width / 2.0, box.height / 2.0, levels, leaves)

        # Attach every sink to its nearest leaf tap.
        sink_nodes = [make_sink(p, c, name=f"s{i}") for i, (p, c) in enumerate(sinks)]
        for node in sink_nodes:
            leaf = min(leaves, key=lambda l: l.location.manhattan_to(node.location))
            self._attach_with_buffers(leaf, node)
        self._prune_empty(root)
        tree = ClockTree.from_network(center, root, 0.0)
        return HTreeResult(tree, time.perf_counter() - t0, levels)

    # ------------------------------------------------------------------

    def _grow(
        self,
        node: TreeNode,
        half_w: float,
        half_h: float,
        levels: int,
        leaves: list[TreeNode],
    ) -> None:
        """One H per level: horizontal bar, two vertical bars, recurse."""
        if levels == 0:
            leaves.append(node)
            return
        x, y = node.location.x, node.location.y
        for dx in (-half_w / 2.0, half_w / 2.0):
            arm = make_steiner(Point(x + dx, y))
            self._splice_buffered_wire(node, arm)
            for dy in (-half_h / 2.0, half_h / 2.0):
                tip = make_steiner(Point(x + dx, y + dy))
                self._splice_buffered_wire(arm, tip)
                self._grow(tip, half_w / 2.0, half_h / 2.0, levels - 1, leaves)

    def _attach_with_buffers(self, leaf: TreeNode, sink: TreeNode) -> None:
        self._splice_buffered_wire(leaf, sink)

    def _splice_buffered_wire(self, parent: TreeNode, child: TreeNode) -> None:
        """Connect parent->child, inserting buffers per the slew target.

        The wire is cut into slew-feasible segments using the same
        library-driven rule as the aggressive flow's path builder.
        """
        target = self.options.target_slew
        load_name = (
            child.buffer.name
            if child.kind is NodeKind.BUFFER
            else self.library.load_name_for_cap(
                child.cap if child.kind is NodeKind.SINK else 2e-15
            )
        )
        total = parent.location.manhattan_to(child.location)
        node = child
        remaining = total
        while remaining > 0:
            best_len, best_type = 0.0, self.buffers.by_size()[-1].name
            for name in self.library.buffer_names:
                lo, hi = 0.0, min(
                    remaining, self.library.max_single_length(name, load_name)
                )
                for _ in range(20):
                    mid = (lo + hi) / 2.0
                    slew = self.library.single_wire(
                        name, load_name, target, mid
                    ).wire_slew
                    if slew <= target:
                        lo = mid
                    else:
                        hi = mid
                if lo > best_len:
                    best_len, best_type = lo, name
            if best_len >= remaining - 1e-9:
                break  # the rest is slew-clean without another buffer
            cut = remaining - best_len
            frac = cut / total
            point = parent.location.lerp(child.location, frac)
            buf = make_buffer(point, self.buffers[best_type])
            buf.attach(node, max(best_len, point.manhattan_to(node.location)))
            node = buf
            load_name = best_type
            remaining = cut
        parent.attach(node, max(remaining, parent.location.manhattan_to(node.location)))

    def _prune_empty(self, root: TreeNode) -> None:
        """Remove H branches that ended up serving no sink."""
        changed = True
        while changed:
            changed = False
            for node in list(root.walk()):
                if (
                    node is not root
                    and not node.children
                    and node.kind in (NodeKind.STEINER, NodeKind.BUFFER)
                ):
                    node.detach()
                    changed = True
