"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``synthesize``  — run the aggressive-buffered CTS on a benchmark or a
  generated instance, verify with the mini-SPICE engine, optionally save
  the tree as JSON/DOT/SPICE netlist.
- ``characterize`` — (re)build the delay/slew library for a technology.
- ``bench``       — print one of the paper's tables.

Examples::

    python -m repro synthesize --gsrc r1 --sinks 60
    python -m repro synthesize --random 40 --area 30000 --json tree.json
    python -m repro characterize --wire-scale 10
    python -m repro bench --table 5.2 --scale 30
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clock tree synthesis under aggressive buffer insertion",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synthesize", help="synthesize and verify a clock tree")
    source = synth.add_mutually_exclusive_group(required=True)
    source.add_argument("--gsrc", metavar="NAME", help="GSRC stand-in (r1..r5)")
    source.add_argument("--ispd", metavar="NAME", help="ISPD stand-in (f11..fnb1)")
    source.add_argument("--random", type=int, metavar="N", help="random instance")
    source.add_argument("--file", metavar="PATH", help="parse a benchmark file")
    synth.add_argument("--sinks", type=int, default=0, help="scale down to N sinks")
    synth.add_argument("--area", type=float, default=40000.0, help="die span (units)")
    synth.add_argument("--seed", type=int, default=1)
    synth.add_argument("--slew-limit", type=float, default=100.0, help="ps")
    synth.add_argument("--hstructure", choices=["reestimate", "correct"])
    synth.add_argument("--router", choices=["profile", "maze"], default="profile")
    synth.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool workers for per-pair merge routing (0 = serial;"
        " results are bit-identical either way)",
    )
    synth.add_argument(
        "--no-batch-commit",
        action="store_true",
        help="commit merges with scalar timing queries instead of the"
        " lockstep batched scheduler (bit-identical, for debugging/timing)",
    )
    synth.add_argument(
        "--no-shared-windows",
        action="store_true",
        help="route every merge over a private per-pair maze window instead"
        " of the level-scoped shared grid-tile cache (bit-identical, for"
        " debugging/timing)",
    )
    synth.add_argument(
        "--no-batch-expansion",
        action="store_true",
        help="expand delay profiles pair by pair with lazy table"
        " evaluation instead of the lockstep level scheduler"
        " (bit-identical, for debugging/timing)",
    )
    synth.add_argument(
        "--no-batch-route-finish",
        action="store_true",
        help="finish shared-window maze routes pair by pair instead of"
        " through the level-wide ranking/materialization kernel"
        " (bit-identical, for debugging/timing)",
    )
    synth.add_argument(
        "--no-soa-commit",
        action="store_true",
        help="run the commit phase on per-node object walks instead of"
        " the structure-of-arrays tree mirror (bit-identical, for"
        " debugging/timing)",
    )
    synth.add_argument(
        "--strict",
        action="store_true",
        help="re-raise fast-path failures instead of degrading to the"
        " bit-identical scalar fallbacks (CI equivalence runs)",
    )
    synth.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="write a resumable snapshot after each topology level",
    )
    synth.add_argument(
        "--resume-from",
        metavar="PATH",
        help="restart synthesis from a checkpoint file (or a checkpoint"
        " directory's latest level); the resumed tree is bit-identical"
        " to an uninterrupted run",
    )
    synth.add_argument(
        "--pool-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-batch worker-pool gather timeout before the supervision"
        " ladder engages (0 waits forever)",
    )
    synth.add_argument(
        "--fault-plan",
        metavar="PLAN",
        help="deterministic fault-injection plan, site:index:mode,..."
        " (testing the degradation ladder; see repro.evalx.faultinject)",
    )
    synth.add_argument("--eval-dt", type=float, default=1.0, help="sim step (ps)")
    synth.add_argument("--json", metavar="PATH", help="save tree as JSON")
    synth.add_argument("--dot", metavar="PATH", help="save tree as Graphviz DOT")
    synth.add_argument("--spice", metavar="PATH", help="save flat SPICE netlist")
    synth.add_argument("--no-eval", action="store_true", help="skip verification")

    char = sub.add_parser("characterize", help="(re)build the delay/slew library")
    char.add_argument("--wire-scale", type=float, default=10.0)
    char.add_argument("--force", action="store_true", help="rebuild even if cached")

    bench = sub.add_parser("bench", help="print one of the paper's tables")
    bench.add_argument("--table", choices=["5.1", "5.2", "5.3"], required=True)
    bench.add_argument("--scale", type=int, default=40, help="sinks per instance")
    bench.add_argument("--full", action="store_true", help="published sizes")
    bench.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool workers for per-pair merge routing (0 = serial)",
    )
    bench.add_argument(
        "--no-batch-commit",
        action="store_true",
        help="commit merges with scalar timing queries instead of the"
        " lockstep batched scheduler",
    )
    bench.add_argument(
        "--no-shared-windows",
        action="store_true",
        help="route merges over private per-pair maze windows instead of"
        " the level-scoped shared grid-tile cache",
    )
    bench.add_argument(
        "--no-batch-expansion",
        action="store_true",
        help="expand delay profiles pair by pair with lazy table"
        " evaluation instead of the lockstep level scheduler",
    )
    bench.add_argument(
        "--no-batch-route-finish",
        action="store_true",
        help="finish shared-window maze routes pair by pair instead of"
        " through the level-wide ranking/materialization kernel",
    )
    bench.add_argument(
        "--no-soa-commit",
        action="store_true",
        help="run the commit phase on per-node object walks instead of"
        " the structure-of-arrays tree mirror",
    )

    batch = sub.add_parser(
        "run-batch",
        help="run a manifest of synthesis jobs under supervision"
        " (per-job subprocess, heartbeat watchdog, checkpoint-backed"
        " retry, quarantine; see RESILIENCE.md)",
    )
    batch.add_argument(
        "manifest",
        nargs="?",
        metavar="MANIFEST.json",
        help="batch manifest (jobs, options, policy; repro.jobs.manifest)",
    )
    batch.add_argument(
        "--run-dir",
        metavar="DIR",
        default=None,
        help="fresh directory for checkpoints, heartbeats, logs and"
        " results (default: <manifest-stem>_run)",
    )
    batch.add_argument(
        "--report",
        metavar="DIR",
        default=None,
        help="summarize an existing run directory's events.jsonl"
        " instead of running a batch",
    )
    batch.add_argument(
        "--job-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per job attempt before SIGKILL"
        " (0 disables; env REPRO_JOB_DEADLINE)",
    )
    batch.add_argument(
        "--job-mem-mb",
        type=float,
        default=None,
        metavar="MIB",
        help="peak-RSS budget per job attempt before SIGKILL"
        " (0 disables; env REPRO_JOB_MEM_MB)",
    )
    batch.add_argument(
        "--job-retries",
        type=int,
        default=None,
        metavar="N",
        help="retries per job after the first attempt, each resuming"
        " from the last valid checkpoint, before quarantine"
        " (env REPRO_JOB_RETRIES)",
    )
    batch.add_argument(
        "--heartbeat-stall",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds without a heartbeat change before a job counts as"
        " hung and is killed (0 disables; env REPRO_HEARTBEAT_STALL)",
    )

    lint = sub.add_parser(
        "lint",
        help="statically check determinism and kernel-contract rails"
        " (repro-lint; see ANALYSIS.md)",
    )
    from repro.lintx.cli import add_lint_arguments

    add_lint_arguments(lint)
    return parser


def _load_instance(args):
    from repro.benchio import gsrc_instance, ispd_instance, random_instance
    from repro.benchio.gsrc import parse_gsrc

    if args.gsrc:
        inst = gsrc_instance(args.gsrc)
    elif args.ispd:
        inst = ispd_instance(args.ispd)
    elif args.random:
        inst = random_instance(args.random, args.area, seed=args.seed)
    else:
        inst = parse_gsrc(Path(args.file))
    if args.sinks:
        inst = inst.scaled_down(args.sinks, seed=args.seed)
    return inst


def _cmd_synthesize(args) -> int:
    from repro.core import AggressiveBufferedCTS, CTSOptions
    from repro.evalx import evaluate_tree
    from repro.tree.export import save_tree_json, tree_to_dot
    from repro.tree.netlist_export import tree_netlist

    inst = _load_instance(args)
    print(f"instance: {inst}")
    options = CTSOptions(
        slew_limit=args.slew_limit * 1e-12,
        hstructure=args.hstructure,
        router=args.router,
        **({} if args.workers is None else {"workers": args.workers}),
        **({"batch_commit": False} if args.no_batch_commit else {}),
        **({"shared_windows": False} if args.no_shared_windows else {}),
        **({"batch_expansion": False} if args.no_batch_expansion else {}),
        **({"batch_route_finish": False} if args.no_batch_route_finish else {}),
        **({"soa_commit": False} if args.no_soa_commit else {}),
        **({"strict": True} if args.strict else {}),
        **({} if args.checkpoint_dir is None else {"checkpoint_dir": args.checkpoint_dir}),
        **({} if args.resume_from is None else {"resume_from": args.resume_from}),
        **({} if args.pool_timeout is None else {"pool_timeout": args.pool_timeout}),
        **({} if args.fault_plan is None else {"fault_plan": args.fault_plan}),
    )
    cts = AggressiveBufferedCTS(options=options, blockages=inst.blockages or None)
    result = cts.synthesize(inst.sink_pairs(), inst.source)
    print(result.report())

    if not args.no_eval:
        metrics = evaluate_tree(result.tree, cts.tech, dt=args.eval_dt * 1e-12)
        print(
            f"verified: worst slew {metrics.worst_slew * 1e12:.1f} ps"
            f" (limit {args.slew_limit:.0f}),"
            f" skew {metrics.skew * 1e12:.1f} ps,"
            f" latency {metrics.latency * 1e9:.2f} ns"
        )
        if metrics.worst_slew > options.slew_limit:
            print("SLEW CONSTRAINT VIOLATED", file=sys.stderr)
            return 1
    if args.json:
        save_tree_json(result.tree, args.json)
        print(f"tree saved to {args.json}")
    if args.dot:
        Path(args.dot).write_text(tree_to_dot(result.tree))
        print(f"DOT saved to {args.dot}")
    if args.spice:
        Path(args.spice).write_text(tree_netlist(result.tree.root, cts.tech))
        print(f"SPICE netlist saved to {args.spice}")
    return 0


def _cmd_characterize(args) -> int:
    from repro.charlib import default_library_path, load_default_library
    from repro.tech import default_technology

    tech = default_technology(wire_scale=args.wire_scale)
    library = load_default_library(tech, rebuild=args.force, verbose=True)
    print(f"library for {tech.name}: {len(library.buffer_names)} buffers")
    print(f"cached at {default_library_path(tech)}")
    worst = max(row["rms_error"] for row in library.fit_report())
    print(f"worst fit RMS: {worst * 1e12:.2f} ps")
    return 0


def _cmd_bench(args) -> int:
    from repro.core import CTSOptions
    from repro.evalx.harness import (
        render_table_5_1,
        render_table_5_2,
        render_table_5_3,
        table_5_1_rows,
        table_5_2_rows,
        table_5_3_rows,
    )

    full = True if args.full else False
    options = CTSOptions(
        **({} if args.workers is None else {"workers": args.workers}),
        **({"batch_commit": False} if args.no_batch_commit else {}),
        **({"shared_windows": False} if args.no_shared_windows else {}),
        **({"batch_expansion": False} if args.no_batch_expansion else {}),
        **({"batch_route_finish": False} if args.no_batch_route_finish else {}),
        **({"soa_commit": False} if args.no_soa_commit else {}),
    )
    if args.table == "5.1":
        print(
            render_table_5_1(
                table_5_1_rows(full=full, scale=args.scale, options=options)
            )
        )
    elif args.table == "5.2":
        print(
            render_table_5_2(
                table_5_2_rows(full=full, scale=args.scale, options=options)
            )
        )
    else:
        print(
            render_table_5_3(
                table_5_3_rows(full=full, scale=args.scale, workers=options.workers)
            )
        )
    return 0


def _cmd_run_batch(args) -> int:
    from repro.jobs import BatchRunner, JobPolicy, load_manifest
    from repro.jobs.runner import run_batch_report

    if args.report is not None:
        print(run_batch_report(args.report))
        return 0
    if not args.manifest:
        print("run-batch needs a MANIFEST.json (or --report DIR)", file=sys.stderr)
        return 2
    manifest = load_manifest(args.manifest)
    # CLI flags outrank the env and the manifest's policy blocks.
    cli_overrides = {
        key: value
        for key, value in (
            ("deadline_s", args.job_deadline),
            ("mem_mb", args.job_mem_mb),
            ("max_retries", args.job_retries),
            ("heartbeat_stall_s", args.heartbeat_stall),
        )
        if value is not None
    }
    run_dir = args.run_dir or f"{Path(args.manifest).stem}_run"
    runner = BatchRunner(
        manifest,
        run_dir,
        policy=JobPolicy(),
        manifest_path=args.manifest,
        final_overrides=cli_overrides,
    )
    batch = runner.run()
    print(run_batch_report(run_dir))
    if batch.quarantined:
        names = ", ".join(o.job_id for o in batch.quarantined)
        print(f"quarantined: {names}", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args) -> int:
    from repro.lintx.cli import run

    return run(args)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "synthesize": _cmd_synthesize,
        "characterize": _cmd_characterize,
        "bench": _cmd_bench,
        "run-batch": _cmd_run_batch,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
