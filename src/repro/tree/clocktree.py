"""The ClockTree container."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geom.point import Point
from repro.tree.nodes import NodeKind, TreeNode, make_source


class ClockTree:
    """A complete clock tree: a SOURCE root plus the synthesized network.

    Construction: build the network bottom-up as free-standing
    :class:`TreeNode` fragments, then wrap the final root::

        tree = ClockTree.from_network(source_location, network_root)
    """

    def __init__(self, root: TreeNode):
        if root.kind is not NodeKind.SOURCE:
            raise ValueError("clock tree root must be a SOURCE node")
        self.root = root
        #: Lazy name -> node index for :meth:`node_by_name`; entries are
        #: re-validated on every hit, so tree surgery after a build makes
        #: the index rebuild itself rather than serve stale nodes.
        self._name_index: dict[str, TreeNode] | None = None

    @classmethod
    def from_network(
        cls,
        source_location: Point,
        network_root: TreeNode,
        wire_length: float | None = None,
        name: str = "clk",
    ) -> "ClockTree":
        """Attach a source at ``source_location`` above the network root."""
        source = make_source(source_location, name=name)
        source.attach(network_root, wire_length)
        return cls(source)

    # ------------------------------------------------------------------

    def nodes(self) -> list[TreeNode]:
        return list(self.root.walk())

    def sinks(self) -> list[TreeNode]:
        return self.root.sinks()

    def buffers(self) -> list[TreeNode]:
        return self.root.buffers()

    def node_by_name(self, name: str) -> TreeNode:
        index = self._name_index
        if index is not None:
            node = index.get(name)
            if node is not None and node.name == name and self._in_tree(node):
                return node
        # Miss, renamed, or detached entry: (re)build from the live tree.
        # setdefault keeps the first node per name in walk order, matching
        # what the linear scan used to return for duplicate names.
        index = {}
        for node in self.root.walk():
            index.setdefault(node.name, node)
        self._name_index = index
        found = index.get(name)
        if found is None:
            raise KeyError(f"no node named {name!r}")
        return found

    def _in_tree(self, node: TreeNode) -> bool:
        """Whether ``node`` still hangs under this tree's root (O(depth))."""
        while node.parent is not None:
            node = node.parent
        return node is self.root

    def total_wirelength(self) -> float:
        return sum(n.wire_to_parent for n in self.root.walk())

    def buffer_count(self) -> int:
        return len(self.buffers())

    def buffer_histogram(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for b in self.buffers():
            hist[b.buffer.name] = hist.get(b.buffer.name, 0) + 1
        return hist

    def depth(self) -> int:
        """Maximum number of edges from root to any leaf."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            stack.extend((c, d + 1) for c in node.children)
        return best

    def stats(self) -> dict:
        """Summary statistics for reports, computed in one walk.

        Visits nodes in ``TreeNode.walk`` order, so the wirelength float
        sum and the buffer histogram's insertion order are identical to
        the per-statistic helpers above.
        """
        n_sinks = n_buffers = n_nodes = 0
        wirelength = 0.0
        depth = 0
        buffers: dict[str, int] = {}
        stack = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            n_nodes += 1
            if d > depth:
                depth = d
            wirelength += node.wire_to_parent
            if node.kind is NodeKind.SINK:
                n_sinks += 1
            elif node.kind is NodeKind.BUFFER:
                name = node.buffer.name
                n_buffers += 1
                buffers[name] = buffers.get(name, 0) + 1
            stack.extend((c, d + 1) for c in node.children)
        return {
            "n_sinks": n_sinks,
            "n_buffers": n_buffers,
            "n_nodes": n_nodes,
            "wirelength": wirelength,
            "depth": depth,
            "buffers": buffers,
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"<ClockTree sinks={s['n_sinks']} buffers={s['n_buffers']}"
            f" wl={s['wirelength']:.0f}>"
        )


@dataclass(frozen=True)
class TreeEdge:
    """A (parent, child) pair with its wire length; convenience for iteration."""

    parent: TreeNode
    child: TreeNode
    length: float


def tree_edges(root: TreeNode) -> list[TreeEdge]:
    return [
        TreeEdge(n.parent, n, n.wire_to_parent)
        for n in root.walk()
        if n.parent is not None
    ]
