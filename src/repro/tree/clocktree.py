"""The ClockTree container."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geom.point import Point
from repro.tree.nodes import NodeKind, TreeNode, make_source


class ClockTree:
    """A complete clock tree: a SOURCE root plus the synthesized network.

    Construction: build the network bottom-up as free-standing
    :class:`TreeNode` fragments, then wrap the final root::

        tree = ClockTree.from_network(source_location, network_root)
    """

    def __init__(self, root: TreeNode):
        if root.kind is not NodeKind.SOURCE:
            raise ValueError("clock tree root must be a SOURCE node")
        self.root = root

    @classmethod
    def from_network(
        cls,
        source_location: Point,
        network_root: TreeNode,
        wire_length: float | None = None,
        name: str = "clk",
    ) -> "ClockTree":
        """Attach a source at ``source_location`` above the network root."""
        source = make_source(source_location, name=name)
        source.attach(network_root, wire_length)
        return cls(source)

    # ------------------------------------------------------------------

    def nodes(self) -> list[TreeNode]:
        return list(self.root.walk())

    def sinks(self) -> list[TreeNode]:
        return self.root.sinks()

    def buffers(self) -> list[TreeNode]:
        return self.root.buffers()

    def node_by_name(self, name: str) -> TreeNode:
        for node in self.root.walk():
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r}")

    def total_wirelength(self) -> float:
        return sum(n.wire_to_parent for n in self.root.walk())

    def buffer_count(self) -> int:
        return len(self.buffers())

    def buffer_histogram(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for b in self.buffers():
            hist[b.buffer.name] = hist.get(b.buffer.name, 0) + 1
        return hist

    def depth(self) -> int:
        """Maximum number of edges from root to any leaf."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            stack.extend((c, d + 1) for c in node.children)
        return best

    def stats(self) -> dict:
        """Summary statistics for reports."""
        sinks = self.sinks()
        return {
            "n_sinks": len(sinks),
            "n_buffers": self.buffer_count(),
            "n_nodes": len(self.nodes()),
            "wirelength": self.total_wirelength(),
            "depth": self.depth(),
            "buffers": self.buffer_histogram(),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"<ClockTree sinks={s['n_sinks']} buffers={s['n_buffers']}"
            f" wl={s['wirelength']:.0f}>"
        )


@dataclass(frozen=True)
class TreeEdge:
    """A (parent, child) pair with its wire length; convenience for iteration."""

    parent: TreeNode
    child: TreeNode
    length: float


def tree_edges(root: TreeNode) -> list[TreeEdge]:
    return [
        TreeEdge(n.parent, n, n.wire_to_parent)
        for n in root.walk()
        if n.parent is not None
    ]
