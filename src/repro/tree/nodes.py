"""Clock tree nodes."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.geom.point import Point
from repro.tech.buffers import BufferType


class _NodeIdCounter:
    """Monotonic node-id source with a non-consuming :meth:`peek`.

    The parallel merge flow records which id range each prepare/commit
    phase consumed so it can renumber a level's nodes into the exact
    order the serial flow would have assigned (see
    :mod:`repro.core.parallel_merge`); that requires reading the counter
    without advancing it, which :func:`itertools.count` cannot do.
    """

    __slots__ = ("_next",)

    def __init__(self) -> None:
        self._next = 0

    def __iter__(self) -> "_NodeIdCounter":
        return self

    def __next__(self) -> int:
        value = self._next
        self._next += 1
        return value

    def peek(self) -> int:
        return self._next


_node_ids = _NodeIdCounter()

#: Optional structure-of-arrays mirror (repro.core.soa_tree.SoaTree).
#: When installed, every node creation / attach / detach is echoed into
#: flat columns so the commit phase can evaluate whole levels from
#: arrays. ``None`` (the default) keeps TreeNode overhead at one global
#: load per surgery op.
_RECORDER = None


def set_tree_recorder(recorder):
    """Install a tree-surgery recorder; returns the previous one.

    The synthesis flow installs its :class:`~repro.core.soa_tree.SoaTree`
    for the duration of one run and restores the previous recorder in a
    ``finally`` block, so nested or sequential runs never observe each
    other's mirrors.
    """
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    return previous


def peek_node_id() -> int:
    """The id the next created :class:`TreeNode` will receive."""
    return _node_ids.peek()


def set_node_id(value: int) -> None:
    """Set the id the next created :class:`TreeNode` will receive.

    Checkpoint resume restores the counter to its value at snapshot
    time, so nodes created after the restart get the exact ids (and
    auto-generated names) the uninterrupted run would have assigned —
    a precondition for bit-identical resumed trees.
    """
    if value < 0:
        raise ValueError("node id counter cannot go negative")
    _node_ids._next = value


class NodeKind(Enum):
    """Role of a node in the clock tree."""

    SOURCE = "source"  # the clock root (drives the tree)
    SINK = "sink"  # a clocked element's clock pin
    MERGE = "merge"  # two sub-trees join here
    BUFFER = "buffer"  # an inserted buffer (merge node or mid-route)
    STEINER = "steiner"  # route bend / wire tap, electrically just wire


@dataclass(eq=False)
class TreeNode:
    """One node of a clock tree.

    ``wire_to_parent`` is the *electrical* length of the wire from the
    parent (in layout units); wire-snaking makes it exceed the Manhattan
    distance between the endpoints.
    """

    kind: NodeKind
    location: Point
    name: str = ""
    cap: float = 0.0  # sink load capacitance (SINK nodes only)
    buffer: BufferType | None = None  # BUFFER nodes only
    parent: "TreeNode | None" = None
    wire_to_parent: float = 0.0
    children: list["TreeNode"] = field(default_factory=list)
    id: int = field(default_factory=lambda: next(_node_ids))

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"{self.kind.value[0]}{self.id}"
        if self.kind is NodeKind.BUFFER and self.buffer is None:
            raise ValueError("BUFFER node requires a buffer type")
        if self.kind is not NodeKind.BUFFER and self.buffer is not None:
            raise ValueError(f"{self.kind} node cannot carry a buffer")
        if self.kind is not NodeKind.SINK and self.cap:
            raise ValueError(f"{self.kind} node cannot carry sink cap")
        if _RECORDER is not None:
            _RECORDER.on_create(self)

    def __repr__(self) -> str:
        extra = f" buf={self.buffer.name}" if self.buffer else ""
        return (
            f"<{self.kind.value} {self.name} @({self.location.x:.0f},"
            f"{self.location.y:.0f}){extra}>"
        )

    # ------------------------------------------------------------------

    def attach(self, child: "TreeNode", wire_length: float | None = None) -> "TreeNode":
        """Make ``child`` a child of this node.

        ``wire_length`` defaults to the Manhattan distance between the two
        locations (no snaking).
        """
        if child.parent is not None:
            raise ValueError(f"{child} already has a parent")
        if wire_length is None:
            wire_length = self.location.manhattan_to(child.location)
        if wire_length < self.location.manhattan_to(child.location) - 1e-6:
            raise ValueError(
                "wire length shorter than Manhattan distance between endpoints"
            )
        child.parent = self
        child.wire_to_parent = wire_length
        self.children.append(child)
        if _RECORDER is not None:
            _RECORDER.on_attach(self, child)
        return child

    def detach(self) -> "TreeNode":
        """Remove this node from its parent; returns self (now a root)."""
        if self.parent is not None:
            parent = self.parent
            parent.children.remove(self)
            self.parent = None
            self.wire_to_parent = 0.0
            if _RECORDER is not None:
                _RECORDER.on_detach(parent, self)
        return self

    # ------------------------------------------------------------------

    def is_stage_root(self) -> bool:
        """Whether a simulation/analysis stage starts at this node."""
        return self.kind in (NodeKind.BUFFER, NodeKind.SOURCE)

    def walk(self):
        """Yield this node and all descendants, parents before children."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def sinks(self) -> list["TreeNode"]:
        return [n for n in self.walk() if n.kind is NodeKind.SINK]

    def buffers(self) -> list["TreeNode"]:
        return [n for n in self.walk() if n.kind is NodeKind.BUFFER]

    def downstream_wirelength(self) -> float:
        """Total wire length strictly below this node."""
        return sum(n.wire_to_parent for n in self.walk()) - self.wire_to_parent

    def unbuffered_cap(self, wire_cap_per_unit: float) -> float:
        """Capacitance seen looking down from this node up to stage loads.

        Sums wire capacitance and terminal caps of the unbuffered region
        below this node; descent stops at buffer inputs (their input cap
        must be added by the caller, which knows the Technology).
        """
        total = 0.0
        stack = list(self.children)
        while stack:
            node = stack.pop()
            total += wire_cap_per_unit * node.wire_to_parent
            if node.kind is NodeKind.SINK:
                total += node.cap
            elif node.kind is NodeKind.BUFFER:
                continue  # stage boundary; caller adds input cap
            stack.extend(node.children if node.kind is not NodeKind.BUFFER else [])
        return total

    def root(self) -> "TreeNode":
        node = self
        while node.parent is not None:
            node = node.parent
        return node


def make_sink(location: Point, cap: float, name: str = "") -> TreeNode:
    return TreeNode(NodeKind.SINK, location, name=name, cap=cap)


def make_merge(location: Point, name: str = "") -> TreeNode:
    return TreeNode(NodeKind.MERGE, location, name=name)


def make_buffer(location: Point, buffer: BufferType, name: str = "") -> TreeNode:
    return TreeNode(NodeKind.BUFFER, location, name=name, buffer=buffer)


def make_steiner(location: Point, name: str = "") -> TreeNode:
    return TreeNode(NodeKind.STEINER, location, name=name)


def make_source(location: Point, name: str = "clk") -> TreeNode:
    return TreeNode(NodeKind.SOURCE, location, name=name)
