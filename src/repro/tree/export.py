"""Clock tree serialization: JSON and Graphviz DOT.

JSON round-trips the full tree (geometry, wire lengths, buffer types,
sink caps) for archiving synthesized results; DOT renders the topology
for visual inspection.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.geom.point import Point
from repro.tech.buffers import BufferLibrary
from repro.tree.clocktree import ClockTree
from repro.tree.nodes import (
    NodeKind,
    TreeNode,
    make_buffer,
    make_merge,
    make_sink,
    make_source,
    make_steiner,
)


def tree_to_dict(tree: ClockTree | TreeNode) -> dict:
    """Nested-dict form of the tree (children inline)."""
    root = tree.root if isinstance(tree, ClockTree) else tree

    def encode(node: TreeNode) -> dict:
        data = {
            "kind": node.kind.value,
            "name": node.name,
            "x": node.location.x,
            "y": node.location.y,
            "wire_to_parent": node.wire_to_parent,
        }
        if node.kind is NodeKind.SINK:
            data["cap"] = node.cap
        if node.kind is NodeKind.BUFFER:
            data["buffer"] = node.buffer.name
        if node.children:
            data["children"] = [encode(c) for c in node.children]
        return data

    return encode(root)


def tree_signature(tree: ClockTree | TreeNode, base_id: int = 0) -> dict:
    """Canonical :func:`tree_to_dict` form for run-to-run comparison.

    Auto-generated node names embed the global node-id counter, so two
    bit-identical synthesis runs in one process still differ by a
    constant name offset. Rebasing the embedded ids by ``base_id`` (the
    :func:`repro.tree.nodes.peek_node_id` value captured just before the
    run) makes signatures of identical runs compare equal. Sink and
    source names are explicit (index-based) and are left untouched.
    """
    data = tree_to_dict(tree)

    def rebase(node: dict) -> None:
        if node["kind"] not in ("sink", "source"):
            prefix, digits = node["name"][:1], node["name"][1:]
            if (
                prefix == node["kind"][0]
                and digits.isdigit()
                and int(digits) >= base_id
            ):
                node["name"] = f"{prefix}{int(digits) - base_id}"
        for child in node.get("children", ()):
            rebase(child)

    rebase(data)
    return data


def signature_digest(signature: dict) -> str:
    """Hex digest of a :func:`tree_signature` dict.

    Canonical JSON (sorted keys, no whitespace) hashed with SHA-256, so
    two processes can compare whole trees by exchanging one short
    string — the job runner records this per attempt.
    """
    canonical = json.dumps(
        signature, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def tree_from_dict(data: dict, buffers: BufferLibrary) -> TreeNode:
    """Rebuild a tree from :func:`tree_to_dict` output."""
    makers = {
        "source": lambda d, p: make_source(p, name=d["name"]),
        "sink": lambda d, p: make_sink(p, d["cap"], name=d["name"]),
        "merge": lambda d, p: make_merge(p, name=d["name"]),
        "steiner": lambda d, p: make_steiner(p, name=d["name"]),
        "buffer": lambda d, p: make_buffer(p, buffers[d["buffer"]], name=d["name"]),
    }

    def decode(node_data: dict) -> TreeNode:
        point = Point(node_data["x"], node_data["y"])
        node = makers[node_data["kind"]](node_data, point)
        node.name = node_data["name"]
        for child_data in node_data.get("children", []):
            child = decode(child_data)
            node.attach(child, child_data["wire_to_parent"])
        return node

    return decode(data)


def save_tree_json(tree: ClockTree | TreeNode, path: str | Path) -> None:
    Path(path).write_text(json.dumps(tree_to_dict(tree), indent=1))


def load_tree_json(path: str | Path, buffers: BufferLibrary) -> TreeNode:
    return tree_from_dict(json.loads(Path(path).read_text()), buffers)


_DOT_STYLE = {
    NodeKind.SOURCE: 'shape=doublecircle color="#d62728"',
    NodeKind.SINK: 'shape=box color="#1f77b4"',
    NodeKind.MERGE: 'shape=point color="#2ca02c"',
    NodeKind.BUFFER: 'shape=triangle color="#ff7f0e"',
    NodeKind.STEINER: 'shape=point color="#7f7f7f"',
}


def tree_to_dot(tree: ClockTree | TreeNode, scale: float = 0.001) -> str:
    """Graphviz DOT with nodes pinned to their layout positions."""
    root = tree.root if isinstance(tree, ClockTree) else tree
    lines = [
        "digraph clocktree {",
        "  graph [layout=neato, splines=ortho];",
        '  node [fontsize=8, width=0.1, height=0.1, fixedsize=false];',
    ]
    for node in root.walk():
        label = node.name
        if node.kind is NodeKind.BUFFER:
            label = f"{node.name}\\n{node.buffer.name}"
        pos = f"{node.location.x * scale:.3f},{node.location.y * scale:.3f}"
        lines.append(
            f'  "{node.name}" [{_DOT_STYLE[node.kind]}, label="{label}",'
            f' pos="{pos}!"];'
        )
    for node in root.walk():
        for child in node.children:
            lines.append(
                f'  "{node.name}" -> "{child.name}"'
                f' [label="{child.wire_to_parent:.0f}", fontsize=6];'
            )
    lines.append("}")
    return "\n".join(lines)
