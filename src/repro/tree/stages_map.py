"""Mapping clock trees onto simulation/analysis stages.

A *stage* is a maximal unbuffered region: it starts at a stage root (the
SOURCE or a BUFFER) and extends through wires, STEINER bends and MERGE
nodes until it reaches the next BUFFER inputs or SINKs, which act as the
stage's capacitive loads. Because CMOS gates are unidirectional this
decomposition is electrically exact (see :mod:`repro.spice.stages`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spice.stages import STAGE_ROOT, StageSpec, StageWire
from repro.tech.technology import Technology
from repro.tree.nodes import NodeKind, TreeNode


@dataclass
class StagePath:
    """A maximal unbuffered path within a stage.

    ``length`` is the summed wire length from the path's start to ``end``;
    STEINER nodes along the way are absorbed into the length. ``end`` is a
    BUFFER (stage load), SINK (stage load) or MERGE (with ``branches``
    holding the continuation paths).
    """

    length: float
    end: TreeNode
    branches: list["StagePath"] = field(default_factory=list)

    @property
    def is_load(self) -> bool:
        return not self.branches

    def max_branch_depth(self) -> int:
        """0 for a plain load path, 1 for one merge level, etc."""
        if not self.branches:
            return 0
        return 1 + max(b.max_branch_depth() for b in self.branches)


def _trace_path(start_child: TreeNode, initial_length: float) -> StagePath:
    """Follow wire from a node's child until a load or merge is reached."""
    length = initial_length
    node = start_child
    while True:
        if node.kind in (NodeKind.BUFFER, NodeKind.SINK):
            return StagePath(length, node)
        if node.kind is NodeKind.MERGE:
            if not node.children:
                # Degenerate merge acting as a cap-less endpoint.
                return StagePath(length, node)
            branches = [
                _trace_path(child, child.wire_to_parent)
                for child in node.children
            ]
            if len(branches) == 1:
                # Pass-through merge: absorb into this path.
                only = branches[0]
                return StagePath(length + only.length, only.end, only.branches)
            return StagePath(length, node, branches)
        if node.kind is NodeKind.STEINER:
            if len(node.children) == 0:
                return StagePath(length, node)
            if len(node.children) == 1:
                child = node.children[0]
                length += child.wire_to_parent
                node = child
                continue
            branches = [
                _trace_path(child, child.wire_to_parent)
                for child in node.children
            ]
            return StagePath(length, node, branches)
        raise ValueError(f"unexpected {node.kind} inside a stage")


def stage_structure(stage_root: TreeNode) -> StagePath | None:
    """Structure of the stage rooted at a SOURCE/BUFFER node.

    Returns None for a buffer with no children (dangling driver).
    """
    if not stage_root.is_stage_root():
        raise ValueError(f"{stage_root} is not a stage root")
    if not stage_root.children:
        return None
    if len(stage_root.children) == 1:
        child = stage_root.children[0]
        return _trace_path(child, child.wire_to_parent)
    branches = [
        _trace_path(child, child.wire_to_parent) for child in stage_root.children
    ]
    return StagePath(0.0, stage_root, branches)


def tree_stages(root: TreeNode) -> list[TreeNode]:
    """All stage roots of the tree, in topological (root-first) order."""
    return [n for n in root.walk() if n.is_stage_root()]


def _load_cap(node: TreeNode, tech: Technology) -> float:
    if node.kind is NodeKind.BUFFER:
        return node.buffer.input_cap(tech)
    if node.kind is NodeKind.SINK:
        return node.cap
    return 0.0


def stage_spec_for(
    stage_root: TreeNode, tech: Technology
) -> tuple[StageSpec, dict[int, TreeNode]]:
    """Build the simulate-able :class:`StageSpec` of a stage.

    Returns the spec plus a map from spec node ids back to the tree nodes
    at wire endpoints (loads and merge points), so measured waveforms can
    be attributed to tree nodes.
    """
    structure = stage_structure(stage_root)
    spec = StageSpec(
        drive=stage_root.buffer if stage_root.kind is NodeKind.BUFFER else None
    )
    id_map: dict[int, TreeNode] = {STAGE_ROOT: stage_root}
    counter = [STAGE_ROOT]

    def fresh_id() -> int:
        counter[0] += 1
        return counter[0]

    def emit(path: StagePath, parent_id: int) -> None:
        node_id = fresh_id()
        spec.wires.append(StageWire(parent_id, node_id, path.length))
        id_map[node_id] = path.end
        cap = _load_cap(path.end, tech)
        if cap > 0:
            spec.load_caps[node_id] = cap
        for branch in path.branches:
            emit(branch, node_id)

    if structure is not None:
        if structure.end is stage_root:
            # Root itself branches immediately.
            for branch in structure.branches:
                emit(branch, STAGE_ROOT)
        else:
            emit(structure, STAGE_ROOT)
    spec.validate()
    return spec, id_map
