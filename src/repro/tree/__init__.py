"""Clock tree data structures.

A clock tree is a rooted tree of :class:`TreeNode` objects: a SOURCE at
the root, SINKs at the leaves, MERGE nodes where sub-trees join, BUFFER
nodes wherever a buffer was inserted (merge nodes *or* anywhere along
routing paths — the point of the paper), and STEINER nodes for route
bends/taps. Edges carry explicit wire lengths (which may exceed the
geometric distance when wire-snaking detours were taken).
"""

from repro.tree.nodes import NodeKind, TreeNode
from repro.tree.clocktree import ClockTree
from repro.tree.stages_map import StagePath, stage_structure, tree_stages, stage_spec_for
from repro.tree.netlist_export import tree_circuit, tree_netlist
from repro.tree.validate import validate_tree, TreeInvariantError
from repro.tree.export import (
    save_tree_json,
    load_tree_json,
    tree_to_dict,
    tree_from_dict,
    tree_to_dot,
)

__all__ = [
    "save_tree_json",
    "load_tree_json",
    "tree_to_dict",
    "tree_from_dict",
    "tree_to_dot",
    "NodeKind",
    "TreeNode",
    "ClockTree",
    "StagePath",
    "stage_structure",
    "tree_stages",
    "stage_spec_for",
    "tree_circuit",
    "tree_netlist",
    "validate_tree",
    "TreeInvariantError",
]
