"""Structural invariants of clock trees.

Synthesis bugs usually show up as malformed trees long before they show
up as bad skew numbers; :func:`validate_tree` is called by the test suite
and (cheaply) by the synthesis flow after every merge in debug mode.
"""

from __future__ import annotations

from repro.tree.nodes import NodeKind, TreeNode


class TreeInvariantError(AssertionError):
    """A clock tree violated a structural invariant."""


def validate_tree(root: TreeNode, expect_source_root: bool = False) -> None:
    """Check structural invariants of the (sub)tree under ``root``.

    - parent/child links are mutually consistent and acyclic;
    - SOURCE only at the root, with exactly one child;
    - BUFFER nodes drive exactly one child;
    - MERGE nodes have exactly two children;
    - SINK nodes are leaves with positive capacitance;
    - wire lengths are >= the Manhattan distance between the endpoints
      (snaking may lengthen, never shorten).
    """
    if expect_source_root and root.kind is not NodeKind.SOURCE:
        raise TreeInvariantError(f"root is {root.kind}, expected SOURCE")
    seen: set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node.id in seen:
            raise TreeInvariantError(f"cycle detected at {node}")
        seen.add(node.id)
        for child in node.children:
            if child.parent is not node:
                raise TreeInvariantError(
                    f"{child} child of {node} but parent link says {child.parent}"
                )
            dist = node.location.manhattan_to(child.location)
            if child.wire_to_parent < dist - 1e-6:
                raise TreeInvariantError(
                    f"wire {node.name}->{child.name} length {child.wire_to_parent}"
                    f" shorter than distance {dist}"
                )
        if node.kind is NodeKind.SOURCE:
            if node is not root:
                raise TreeInvariantError(f"interior SOURCE node {node}")
            if len(node.children) != 1:
                raise TreeInvariantError(
                    f"SOURCE must have exactly 1 child, has {len(node.children)}"
                )
        elif node.kind is NodeKind.BUFFER:
            if len(node.children) != 1:
                raise TreeInvariantError(
                    f"BUFFER {node.name} must drive exactly 1 child,"
                    f" has {len(node.children)}"
                )
        elif node.kind is NodeKind.MERGE:
            if len(node.children) != 2:
                raise TreeInvariantError(
                    f"MERGE {node.name} must have 2 children,"
                    f" has {len(node.children)}"
                )
        elif node.kind is NodeKind.SINK:
            if node.children:
                raise TreeInvariantError(f"SINK {node.name} has children")
            if node.cap <= 0:
                raise TreeInvariantError(f"SINK {node.name} has cap {node.cap}")
        stack.extend(node.children)
