"""Flatten a clock tree into a mini-SPICE circuit / SPICE text netlist.

The flat circuit is what the paper calls "the clock tree netlist" whose
SPICE simulation produces the reported worst slew, skew and latency. For
large trees the flat form is exported for inspection, while actual
verification runs stage-by-stage (:mod:`repro.evalx.metrics`), which is
electrically equivalent and far faster.
"""

from __future__ import annotations

from repro.spice.circuit import Circuit
from repro.spice.netlist import write_netlist
from repro.tech.technology import Technology
from repro.timing.waveform import Waveform, ramp_waveform
from repro.tree.nodes import NodeKind, TreeNode

#: Default slew of the ideal ramp driving the clock source.
DEFAULT_SOURCE_SLEW = 60.0e-12


def tree_circuit(
    root: TreeNode,
    tech: Technology,
    source_wave: Waveform | None = None,
    segment_length: float = 400.0,
) -> Circuit:
    """Build the flat transistor-level circuit of the whole tree."""
    if source_wave is None:
        source_wave = ramp_waveform(tech.vdd, DEFAULT_SOURCE_SLEW, t_start=50e-12)
    circuit = Circuit(tech, title=f"clock tree ({root.name})")

    def net_name(node: TreeNode) -> str:
        return f"n_{node.name}"

    circuit.add_vsource(net_name(root), source_wave)
    for node in root.walk():
        if node.parent is not None:
            # The wire from the parent lands on the buffer *input*; the
            # buffer then drives this node's net from its output side.
            target = (
                f"n_{node.name}_in" if node.kind is NodeKind.BUFFER else net_name(node)
            )
            circuit.add_wire(
                net_name(node.parent), target, node.wire_to_parent, segment_length
            )
        if node.kind is NodeKind.BUFFER:
            circuit.add_buffer(f"n_{node.name}_in", net_name(node), node.buffer)
        elif node.kind is NodeKind.SINK:
            circuit.add_cap(net_name(node), node.cap)
    return circuit


def tree_netlist(
    root: TreeNode,
    tech: Technology,
    source_wave: Waveform | None = None,
) -> str:
    """SPICE text netlist of the whole tree."""
    return write_netlist(tree_circuit(root, tech, source_wave))
