"""repro — Clock Tree Synthesis Under Aggressive Buffer Insertion.

A full reproduction of the DAC 2010 paper (Chen, Dong, Chen) / UIUC 2012
thesis (Y.-Y. Chen): maze-routing-based buffered clock tree synthesis with
buffer insertion anywhere along routing paths, slew-bounded by a
SPICE-characterized delay/slew library, plus the substrates the paper
depends on (a mini-SPICE transient simulator, DME baselines, benchmark
generators and the evaluation harness).

Quickstart::

    from repro import AggressiveBufferedCTS, evaluate_tree
    from repro.benchio import random_instance

    inst = random_instance(n_sinks=40, area=30000.0, seed=1)
    cts = AggressiveBufferedCTS()
    result = cts.synthesize(inst.sink_pairs())
    metrics = evaluate_tree(result.tree, cts.tech)
    print(result.report())
    print(f"worst slew {metrics.worst_slew * 1e12:.1f} ps,"
          f" skew {metrics.skew * 1e12:.1f} ps")
"""

from repro.tech import (
    Technology,
    WireModel,
    BufferType,
    BufferLibrary,
    default_technology,
    default_buffer_library,
    cts_buffer_library,
)
from repro.core import (
    CTSOptions,
    AggressiveBufferedCTS,
    SynthesisResult,
    synthesize_clock_tree,
)
from repro.charlib import DelaySlewLibrary, load_default_library, build_library
from repro.evalx import TreeMetrics, evaluate_tree, engine_metrics
from repro.timing.analysis import LibraryTimingEngine
from repro.tree import ClockTree, TreeNode, NodeKind
from repro.geom import Point

__version__ = "1.0.0"

__all__ = [
    "Technology",
    "WireModel",
    "BufferType",
    "BufferLibrary",
    "default_technology",
    "default_buffer_library",
    "cts_buffer_library",
    "CTSOptions",
    "AggressiveBufferedCTS",
    "SynthesisResult",
    "synthesize_clock_tree",
    "DelaySlewLibrary",
    "load_default_library",
    "build_library",
    "TreeMetrics",
    "evaluate_tree",
    "engine_metrics",
    "LibraryTimingEngine",
    "ClockTree",
    "TreeNode",
    "NodeKind",
    "Point",
    "__version__",
]
