"""Lumped RC trees for analytic delay models.

An :class:`RCTree` is the abstraction the Elmore and moment-based metrics
operate on: a tree of nodes, each with a grounded capacitance, connected by
resistive edges, driven at the root through an optional source resistance.
Distributed wires are represented by their standard lumped equivalents
(the caller chooses the segmentation).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RCNode:
    """One node of an RC tree."""

    name: str
    cap: float = 0.0  # grounded capacitance (F)
    parent: "RCNode | None" = None
    resistance: float = 0.0  # resistance of the edge to the parent (Ohm)
    children: list["RCNode"] = field(default_factory=list)

    def is_root(self) -> bool:
        return self.parent is None

    def path_to_root(self) -> list["RCNode"]:
        """Nodes from self up to (and including) the root."""
        path = [self]
        node = self
        while node.parent is not None:
            node = node.parent
            path.append(node)
        return path


class RCTree:
    """A tree of :class:`RCNode` with a driver at the root.

    ``driver_resistance`` models the switching resistance of the driving
    gate for metrics that need a lumped driver (the characterized library
    never uses it — it has the real transistor behaviour baked in).
    """

    def __init__(self, root_name: str = "root", driver_resistance: float = 0.0):
        self.root = RCNode(root_name)
        self.driver_resistance = driver_resistance
        self._nodes: dict[str, RCNode] = {root_name: self.root}

    def add_node(self, name: str, parent: str, resistance: float, cap: float) -> RCNode:
        """Attach a new node under ``parent`` with the given edge R and node C."""
        if name in self._nodes:
            raise ValueError(f"duplicate node {name!r}")
        if resistance < 0 or cap < 0:
            raise ValueError("resistance and capacitance must be non-negative")
        parent_node = self[parent]
        node = RCNode(name, cap, parent_node, resistance)
        parent_node.children.append(node)
        self._nodes[name] = node
        return node

    def add_cap(self, name: str, cap: float) -> None:
        """Add extra grounded capacitance at an existing node."""
        self[name].cap += cap

    def add_wire(
        self, start: str, end: str, length: float, wire, n_segments: int = 8
    ) -> None:
        """Attach a distributed wire as ``n_segments`` lumped RC sections.

        ``wire`` is a :class:`repro.tech.technology.WireModel`.
        """
        if n_segments < 1:
            raise ValueError("need at least one segment")
        total_r = wire.total_r(length)
        total_c = wire.total_c(length)
        seg_r = total_r / n_segments
        seg_c = total_c / n_segments
        self[start].cap += seg_c / 2.0
        prev = start
        for i in range(1, n_segments):
            name = f"{end}__seg{i}"
            self.add_node(name, prev, seg_r, seg_c)
            prev = name
        self.add_node(end, prev, seg_r, seg_c / 2.0)

    def __getitem__(self, name: str) -> RCNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"no RC node named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def nodes(self) -> list[RCNode]:
        """All nodes in topological (parent-before-child) order."""
        order: list[RCNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(node.children)
        return order

    def leaves(self) -> list[RCNode]:
        return [n for n in self.nodes() if not n.children]

    def total_cap(self) -> float:
        return sum(n.cap for n in self.nodes())

    def subtree_caps(self) -> dict[str, float]:
        """Downstream capacitance (including own) of every node."""
        caps: dict[str, float] = {}
        for node in reversed(self.nodes()):
            caps[node.name] = node.cap + sum(
                caps[c.name] for c in node.children
            )
        return caps
