"""Sampled voltage waveforms and threshold measurements.

Every delay/slew number in the reproduction bottoms out in threshold
crossings of sampled waveforms, exactly like the paper's SPICE
measurements: delay at the 50% Vdd crossing, slew as the 10%-90% rise
time. Crossings are located with linear interpolation between samples,
giving sub-timestep resolution.
"""

from __future__ import annotations

import numpy as np


class Waveform:
    """A monotone-sampled voltage waveform ``v(t)``.

    Times are in seconds, strictly increasing. The waveform is treated as
    constant beyond its sampled span.
    """

    __slots__ = ("times", "values")

    def __init__(self, times: np.ndarray, values: np.ndarray):
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.ndim != 1 or times.shape != values.shape:
            raise ValueError("times and values must be equal-length 1-D arrays")
        if times.size < 2:
            raise ValueError("waveform needs at least two samples")
        if not np.all(np.diff(times) > 0):
            raise ValueError("times must be strictly increasing")
        self.times = times
        self.values = values

    def __repr__(self) -> str:
        return (
            f"Waveform({self.times.size} pts, t=[{self.times[0]:.3e},"
            f" {self.times[-1]:.3e}], v=[{self.values.min():.3f},"
            f" {self.values.max():.3f}])"
        )

    @property
    def v_final(self) -> float:
        return float(self.values[-1])

    @property
    def v_initial(self) -> float:
        return float(self.values[0])

    def value_at(self, t: float) -> float:
        """Voltage at time ``t`` (linear interpolation, clamped ends)."""
        return float(np.interp(t, self.times, self.values))

    def cross_time(self, threshold: float, rising: bool = True) -> float:
        """Time of the first crossing of ``threshold``.

        For ``rising`` waveforms, the first sample interval where the value
        reaches the threshold from below; for falling, from above. Raises
        ``ValueError`` when the waveform never crosses.
        """
        v = self.values if rising else -self.values
        thr = threshold if rising else -threshold
        above = v >= thr
        if above[0]:
            return float(self.times[0])
        idx = np.argmax(above)
        if not above[idx]:
            raise ValueError(
                f"waveform never crosses {threshold} ({'rising' if rising else 'falling'})"
            )
        t0, t1 = self.times[idx - 1], self.times[idx]
        v0, v1 = v[idx - 1], v[idx]
        if v1 == v0:
            return float(t1)
        frac = (thr - v0) / (v1 - v0)
        return float(t0 + frac * (t1 - t0))

    def slew(self, vdd: float, lo: float = 0.1, hi: float = 0.9, rising: bool = True) -> float:
        """10%-90% (by default) transition time, in seconds."""
        t_lo = self.cross_time(lo * vdd, rising)
        t_hi = self.cross_time(hi * vdd, rising)
        return abs(t_hi - t_lo)

    def delay_to(self, other: "Waveform", vdd: float, threshold: float = 0.5, rising: bool = True) -> float:
        """50% crossing of ``other`` minus 50% crossing of ``self``."""
        return other.cross_time(threshold * vdd, rising) - self.cross_time(
            threshold * vdd, rising
        )

    def shifted(self, dt: float) -> "Waveform":
        """Copy of the waveform translated by ``dt`` in time."""
        return Waveform(self.times + dt, self.values.copy())

    def resampled(self, times: np.ndarray) -> "Waveform":
        """Waveform re-evaluated on a new time base."""
        return Waveform(times, np.interp(times, self.times, self.values))

    def windowed(self, t0: float, t1: float) -> "Waveform":
        """Sub-waveform over [t0, t1] with interpolated end samples."""
        if t1 <= t0:
            raise ValueError("empty window")
        inner = (self.times > t0) & (self.times < t1)
        times = np.concatenate(([t0], self.times[inner], [t1]))
        values = np.interp(times, self.times, self.values)
        return Waveform(times, values)


def ramp_waveform(
    vdd: float,
    slew: float,
    t_start: float = 0.0,
    t_end: float | None = None,
    v_low: float = 0.0,
    n_flat: int = 8,
    lo: float = 0.1,
    hi: float = 0.9,
) -> Waveform:
    """An ideal saturated-ramp rising waveform with the given 10-90 slew.

    A linear 0-to-Vdd ramp whose 10%-90% transition time equals ``slew``
    (so the full 0-100% ramp lasts ``slew / (hi - lo)``), starting at
    ``t_start`` and held flat afterwards until ``t_end``.
    """
    if slew <= 0:
        raise ValueError("slew must be positive")
    full = slew / (hi - lo)
    if t_end is None:
        t_end = t_start + 4.0 * full
    ramp_t = np.linspace(t_start, t_start + full, 32)
    ramp_v = v_low + (vdd - v_low) * (ramp_t - t_start) / full
    tail_t = np.linspace(t_start + full, t_end, n_flat)[1:]
    tail_v = np.full(tail_t.shape, vdd)
    head_t = np.array([t_start - max(full, 1e-12)])
    head_v = np.array([v_low])
    return Waveform(
        np.concatenate([head_t, ramp_t, tail_t]),
        np.concatenate([head_v, ramp_v, tail_v]),
    )


def smooth_curve_waveform(
    vdd: float,
    slew: float,
    t_start: float = 0.0,
    t_end: float | None = None,
    sharpness: float = 1.0,
) -> Waveform:
    """A buffer-output-like "curved" rising waveform with the given slew.

    Uses a logistic (S-shaped) profile scaled so the 10%-90% transition
    time equals ``slew``. This reproduces the shape contrast of the paper's
    curve-vs-ramp experiment (Fig. 3.2): same measured slew, different
    waveform, different downstream delay.
    """
    if slew <= 0:
        raise ValueError("slew must be positive")
    # Logistic: v = vdd / (1 + exp(-(t - tm)/tau)); 10-90 window = tau*2*ln 9.
    tau = slew / (2.0 * np.log(9.0)) / sharpness
    t_mid = t_start + 3.0 * slew
    if t_end is None:
        t_end = t_mid + 8.0 * slew
    times = np.linspace(t_start - 2.0 * slew, t_end, 512)
    values = vdd / (1.0 + np.exp(-(times - t_mid) / tau))
    return Waveform(times, values)


def measure_slew(wave: Waveform, vdd: float, lo: float = 0.1, hi: float = 0.9) -> float:
    """Module-level convenience for :meth:`Waveform.slew` (rising)."""
    return wave.slew(vdd, lo, hi, rising=True)
