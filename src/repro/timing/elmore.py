"""Elmore delay on RC trees.

The Elmore delay at node *i* is the first moment of the impulse response:

    T_i = sum over nodes k of R(path(root,i) intersect path(root,k)) * C_k

computed in linear time with two tree traversals. The paper (Sec. 3.1)
uses it as the canonical *insufficient* model: it overestimates delay,
ignores resistive shielding and cannot produce slews — which is why the
characterized library exists. It remains useful for coarse estimates and
for the DME baselines.
"""

from __future__ import annotations

from repro.timing.rctree import RCTree


def elmore_delays(tree: RCTree) -> dict[str, float]:
    """Elmore delay from the driver to every node of the tree.

    Includes the driver resistance times total load as the first stage.
    """
    caps_down = tree.subtree_caps()
    delays: dict[str, float] = {}
    root_delay = tree.driver_resistance * caps_down[tree.root.name]
    delays[tree.root.name] = root_delay
    for node in tree.nodes():
        if node.is_root():
            continue
        delays[node.name] = (
            delays[node.parent.name] + node.resistance * caps_down[node.name]
        )
    return delays


def elmore_delay_to(tree: RCTree, name: str) -> float:
    """Elmore delay from the driver to one node."""
    return elmore_delays(tree)[name]


def wire_elmore_delay(
    length: float,
    wire,
    load_cap: float,
    driver_resistance: float = 0.0,
) -> float:
    """Closed-form Elmore delay of a single distributed wire.

    ``R_drv*(C_wire + C_load) + R_wire*(C_wire/2 + C_load)`` — the textbook
    expression used by the zero-skew merge formula (Sec. 2.2).
    """
    r = wire.total_r(length)
    c = wire.total_c(length)
    return driver_resistance * (c + load_cap) + r * (0.5 * c + load_cap)
