"""Higher-order moment delay/slew metrics (D2M, PERI).

These implement the "closed-form delay and slew expressions of ramp inputs
by matching higher order moments" the paper evaluates and finds better
than Elmore but still insufficient (Sec. 3.1, refs [20, 21]):

- **D2M** (Alpert et al., "Closed-form delay and slew metrics made easy"):
  ``delay = m1^2 / sqrt(m2) * ln 2`` using the first two moments of the
  impulse response.
- **S2M**: step-response slew from the first two moments via a lognormal
  impulse-response fit.
- **PERI** (Kashyap et al.): extends step metrics to ramp inputs:
  ramp delay = step delay + rise/2 adjustments; ramp slew =
  ``sqrt(step_slew^2 + in_slew^2)`` (root-sum-square).

Moments are computed exactly on the RC tree by the standard path-tracing
recursion in O(n) per order.
"""

from __future__ import annotations

import math

from repro.timing.rctree import RCTree


def rc_tree_moments(tree: RCTree, order: int = 3) -> dict[str, list[float]]:
    """Moments m1..m_order of the impulse response at every node.

    Uses the classic recursive moment computation: the k-th moment vector
    satisfies the same "Elmore-like" recursion with node capacitances
    weighted by the (k-1)-th moments:

        m_k(i) = sum_j R_ij * C_j * m_{k-1}(j),  m_0 = 1.

    Signs follow the transfer-function convention H(s) = 1 + m1 s + m2 s^2
    + ... with m1 = -T_elmore; the metrics below take magnitudes.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    nodes = tree.nodes()
    moments: dict[str, list[float]] = {n.name: [] for n in nodes}
    prev = {n.name: 1.0 for n in nodes}  # m_0
    for _ in range(order):
        # Weighted caps for this order.
        weighted = {n.name: n.cap * prev[n.name] for n in nodes}
        # Downstream weighted cap per node.
        down: dict[str, float] = {}
        for node in reversed(nodes):
            down[node.name] = weighted[node.name] + sum(
                down[c.name] for c in node.children
            )
        cur: dict[str, float] = {}
        root = tree.root.name
        cur[root] = -tree.driver_resistance * down[root]
        for node in nodes:
            if node.is_root():
                continue
            cur[node.name] = (
                cur[node.parent.name] - node.resistance * down[node.name]
            )
        for name, value in cur.items():
            moments[name].append(value)
        prev = cur
    return moments


def d2m_delay(m1: float, m2: float) -> float:
    """D2M: ``(m1^2 / sqrt(m2)) * ln 2`` (50% step-response delay)."""
    if m2 <= 0 and m2 != 0:
        m2 = abs(m2)
    if m2 == 0:
        return abs(m1) * math.log(2.0)
    return (m1 * m1) / math.sqrt(abs(m2)) * math.log(2.0)


def lognormal_step_slew(m1: float, m2: float, lo: float = 0.1, hi: float = 0.9) -> float:
    """Step-response 10-90 slew from a lognormal impulse-response fit (S2M).

    With mu = ln(m1^2/sqrt(m2)) ... sigma^2 = ln(m2/m1^2), the lognormal
    CDF crossing times give t_p = exp(mu + sigma * z_p) where z_p is the
    standard-normal quantile; slew = t_hi - t_lo.
    """
    m1 = abs(m1)
    m2 = abs(m2)
    if m1 == 0:
        return 0.0
    ratio = m2 / (m1 * m1)
    if ratio <= 1.0:
        # Degenerate (impulse-like) response: fall back to a scaled Elmore.
        return 2.2 * m1 * math.sqrt(max(ratio, 1e-12))
    mu = math.log(m1) - 0.5 * math.log(ratio)
    sigma = math.sqrt(math.log(ratio))
    z = {0.1: -1.2815515655446004, 0.9: 1.2815515655446004}
    t_lo = math.exp(mu + sigma * z[lo] if lo in z else mu)
    t_hi = math.exp(mu + sigma * z[hi] if hi in z else mu)
    return t_hi - t_lo


def elmore_slew_peri(step_slew: float, input_slew: float) -> float:
    """PERI ramp-input slew: root-sum-square of step slew and input slew."""
    return math.sqrt(step_slew * step_slew + input_slew * input_slew)


def ramp_output_delay_peri(step_delay: float, input_slew: float, lo: float = 0.1, hi: float = 0.9) -> float:
    """PERI ramp-input 50% delay from the step 50% delay.

    For a saturated-ramp input with 10-90 rise ``input_slew``, the 50%
    point of the input lags the ramp start by ``0.5 * input_slew/(hi-lo)``;
    PERI's result is that the 50%-to-50% delay of an LTI system under ramp
    input approaches the step-input delay (exact in both fast- and
    slow-ramp limits), so the correction is zero at first order. We keep
    the function for API symmetry and future refinement.
    """
    return step_delay


def node_metrics(
    tree: RCTree, name: str, input_slew: float = 0.0
) -> dict[str, float]:
    """Bundle of all moment metrics at one node of the tree."""
    moments = rc_tree_moments(tree, order=2)[name]
    m1, m2 = abs(moments[0]), abs(moments[1])
    step_delay = d2m_delay(m1, m2)
    step_slew = lognormal_step_slew(m1, m2)
    return {
        "elmore": m1,
        "d2m": step_delay,
        "step_slew": step_slew,
        "ramp_delay": ramp_output_delay_peri(step_delay, input_slew),
        "ramp_slew": elmore_slew_peri(step_slew, input_slew),
    }
