"""Timing: waveforms, delay models, and the library-driven analysis engine.

Three tiers of delay/slew estimation coexist, mirroring Chapter 3 of the
paper:

- :mod:`repro.timing.elmore` — Elmore delay on RC trees (fast, inaccurate);
- :mod:`repro.timing.moments` — higher-order moment metrics (D2M and the
  PERI ramp extension) that beat Elmore but still miss waveform-shape
  effects;
- :mod:`repro.timing.analysis` — the paper's approach: a top-down engine
  driven by the SPICE-characterized delay/slew library
  (:mod:`repro.charlib`), accurate enough to guide aggressive buffer
  insertion.
"""

from repro.timing.waveform import (
    Waveform,
    ramp_waveform,
    smooth_curve_waveform,
    measure_slew,
)
from repro.timing.rctree import RCTree, RCNode
from repro.timing.elmore import elmore_delays, elmore_delay_to, wire_elmore_delay
from repro.timing.moments import (
    rc_tree_moments,
    d2m_delay,
    lognormal_step_slew,
    elmore_slew_peri,
    ramp_output_delay_peri,
    node_metrics,
)

__all__ = [
    "Waveform",
    "ramp_waveform",
    "smooth_curve_waveform",
    "measure_slew",
    "RCTree",
    "RCNode",
    "elmore_delays",
    "elmore_delay_to",
    "wire_elmore_delay",
    "rc_tree_moments",
    "d2m_delay",
    "lognormal_step_slew",
    "elmore_slew_peri",
    "ramp_output_delay_peri",
    "node_metrics",
]
