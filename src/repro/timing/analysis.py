"""Library-driven top-down timing analysis (the paper's engine).

Walks a clock tree stage by stage from the root, propagating *actual*
slews through the characterized delay/slew library: each stage's input
slew is the slew computed at its driver's input, so slew-dependent buffer
intrinsic delay is accounted for — the effect the paper shows breaks
Elmore/moment-based CTS (Sec. 3.1).

During bottom-up synthesis the driver of a sub-tree does not exist yet, so
sub-tree delays are computed under the paper's worst-case assumption: the
(virtual) driver's input slew equals the slew limit (Sec. 4.2.2). These
sub-tree evaluations are memoized per (node, slew-quantization bucket):
once a sub-tree is merged its geometry never changes, and slew changes are
damped after a buffer stage, so the cache hit rate during binary search is
high. Each bucket's value is evaluated at the bucket's *representative*
slew and a query interpolates linearly between its two neighboring
buckets — a cached value is then an exact function of its key and a query
an exact function of (node, raw slew). The lockstep commit scheduler
interleaves queries across merge pairs, and the seed's first-query-wins
memoization would have made results depend on the order the cache fills.

Stage shapes beyond the characterized single-wire / two-branch components
(they are rare under aggressive buffer insertion) are composed recursively:
a nested merge is first treated as a virtual load whose capacitance is the
collapsed downstream stage capacitance, then expanded with a virtual driver
at the merge point using the slew computed there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.charlib.library import DelaySlewLibrary
from repro.tech.technology import Technology
from repro.timing.moments import (
    d2m_delay,
    elmore_slew_peri,
    lognormal_step_slew,
    rc_tree_moments,
)
from repro.timing.rctree import RCTree
from repro.tree.nodes import NodeKind, TreeNode
from repro.tree.stages_map import StagePath, _trace_path, stage_structure

#: Slew quantization for bounds memoization (seconds). Queries interpolate
#: linearly between bucket-representative evaluations, so the error is
#: second-order in the quantum — 1 ps keeps synthesized skew within the
#: seed's quality envelope while quartering the bucket-miss rate of the
#: seed's 0.25 ps first-query-wins bins.
SLEW_QUANTUM = 1.0e-12


@dataclass(frozen=True)
class NodeTiming:
    """Arrival time and slew at one tree node."""

    arrival: float
    slew: float


@dataclass(frozen=True)
class StageTiming:
    """Delays (from the stage input) and slews at a stage's load nodes."""

    loads: tuple[tuple[TreeNode, float, float], ...]  # (node, delay, slew)


class SubtreeBounds(NamedTuple):
    """Min/max delay from a point to the sinks below it, plus worst slew.

    A ``NamedTuple`` rather than a frozen dataclass: the engine creates
    one per bounds query (interpolation) and per stage accumulation, and
    tuple construction is several times cheaper than ``__setattr__``
    spelunking — value semantics and field names are unchanged.
    """

    min_delay: float
    max_delay: float
    worst_slew: float

    @property
    def skew(self) -> float:
        return self.max_delay - self.min_delay


@dataclass
class TreeTiming:
    """Full-tree analysis result."""

    arrivals: dict[int, NodeTiming] = field(default_factory=dict)
    sink_nodes: list[TreeNode] = field(default_factory=list)

    @property
    def latency(self) -> float:
        return max(self.arrivals[s.id].arrival for s in self.sink_nodes)

    @property
    def min_sink_arrival(self) -> float:
        return min(self.arrivals[s.id].arrival for s in self.sink_nodes)

    @property
    def skew(self) -> float:
        return self.latency - self.min_sink_arrival

    @property
    def worst_slew(self) -> float:
        return max(t.slew for t in self.arrivals.values())


class LibraryTimingEngine:
    """Top-down delay/slew analysis backed by the characterized library."""

    def __init__(
        self,
        library: DelaySlewLibrary,
        tech: Technology,
        virtual_drive: str | None = None,
    ):
        self.library = library
        self.tech = tech
        #: Buffer type assumed to drive not-yet-driven sub-trees.
        self.virtual_drive = virtual_drive or library.buffer_names[-1]
        self._bounds_cache: dict[tuple[int, int], SubtreeBounds] = {}
        #: Virtual-driver bounds of MERGE/STEINER roots, keyed by
        #: (node id, quantized slew, drive). Like the buffer cache it
        #: assumes the structure below a queried node never changes (the
        #: bottom-up flow only ever builds above existing roots).
        self._vbounds_cache: dict[tuple[int, int, str], SubtreeBounds] = {}
        #: Collapsed stage capacitance of MERGE/STEINER roots by node id
        #: (the walk is O(sub-tree) and sits inside every bisection probe).
        self._cap_cache: dict[int, float] = {}
        #: Buffer input capacitance by type name (pure per technology).
        self._buffer_cap_cache: dict[str, float] = {}
        #: subtree_bounds_many diagnostics (batched commit phase).
        self.bounds_cache_hits = 0
        self.bounds_cache_misses = 0
        #: Optional structure-of-arrays mirror (repro.core.soa_tree).
        #: When attached, the bounds-bucket prefill evaluates flat
        #: stages from its columns (bit-identical; degrades back to the
        #: object walk on any failure).
        self._soa = None

    def attach_soa(self, soa) -> None:
        """Install (or clear, with None) the structure-of-arrays mirror."""
        self._soa = soa

    # ------------------------------------------------------------------
    # Stage evaluation
    # ------------------------------------------------------------------

    def _buffer_input_cap(self, name: str, buffer) -> float:
        cap = self._buffer_cap_cache.get(name)
        if cap is None:
            cap = self._buffer_cap_cache[name] = buffer.input_cap(self.tech)
        return cap

    def _load_cap_of(self, node: TreeNode) -> float:
        if node.kind is NodeKind.BUFFER:
            return self._buffer_input_cap(node.buffer.name, node.buffer)
        if node.kind is NodeKind.SINK:
            return node.cap
        cached = self._cap_cache.get(node.id)
        if cached is not None:
            return cached
        # Collapsed nested structure: wire + loads below this node.
        cap = node.unbuffered_cap(self.tech.wire.capacitance_per_unit)
        for n in node.walk():
            if n is not node and n.kind is NodeKind.BUFFER:
                cap += self._buffer_input_cap(n.buffer.name, n.buffer)
        self._cap_cache[node.id] = cap
        return cap

    def _eval_structure(
        self,
        drive: str,
        input_slew: float,
        structure: StagePath,
        include_buffer_delay: bool,
    ) -> list[tuple[TreeNode, float, float]]:
        """Evaluate one stage structure; returns (load, delay, slew) rows.

        ``delay`` is measured from the stage input (driver's input when
        ``include_buffer_delay``; the driver's output otherwise).
        """
        if structure.is_load:
            load_name = self.library.load_name_for_cap(
                self._load_cap_of(structure.end)
            )
            delay, slew = self.library.single_wire_delay_slew(
                drive,
                load_name,
                input_slew,
                structure.length,
                include_buffer_delay,
            )
            return [(structure.end, delay, slew)]
        branches = structure.branches
        if len(branches) != 2:
            # Rare >2-way split (Steiner tap): pair up recursively by
            # treating all but the first branch as one collapsed side.
            branches = [
                branches[0],
                StagePath(0.0, structure.end, structure.branches[1:]),
            ]
        left, right = branches
        timing = self.library.branch_component(
            drive,
            input_slew,
            structure.length,
            left.length,
            right.length,
            self._cap_of_branch(left),
            self._cap_of_branch(right),
        )
        base = timing.buffer_delay if include_buffer_delay else 0.0
        rows: list[tuple[TreeNode, float, float]] = []
        for path, delay, slew in (
            (left, timing.left_delay, timing.left_slew),
            (right, timing.right_delay, timing.right_slew),
        ):
            if path.is_load:
                rows.append((path.end, base + delay, slew))
            else:
                # Nested merge: expand with a virtual driver at the merge
                # point whose input slew is the slew computed there; the
                # virtual buffer's own delay is excluded.
                nested = self._eval_structure(drive, slew, path, False)
                rows.extend(
                    (node, base + delay + d2, s2) for node, d2, s2 in nested
                )
        return rows

    def _cap_of_branch(self, path: StagePath) -> float:
        if path.is_load:
            return self._load_cap_of(path.end)
        return (
            self.tech.wire.capacitance_per_unit
            * sum(b.length for b in path.branches)
            + self._load_cap_of(path.end)
        )

    def stage_timing(self, stage_root: TreeNode, input_slew: float) -> StageTiming:
        """Delays/slews at the loads of the stage rooted at a SOURCE/BUFFER."""
        structure = stage_structure(stage_root)
        if structure is None:
            return StageTiming(())
        if stage_root.kind is NodeKind.BUFFER:
            rows = self._eval_structure(
                stage_root.buffer.name, input_slew, structure, True
            )
        else:
            # SOURCE stage: the ideal (zero-impedance) source drives a bare
            # RC region; the characterized library does not apply (there is
            # no driving buffer), so use moment metrics with PERI ramp
            # composition, which are accurate for driver-less RC trees.
            rows = self._eval_source_structure(input_slew, structure)
        return StageTiming(tuple(rows))

    def _eval_source_structure(
        self, input_slew: float, structure: StagePath
    ) -> list[tuple[TreeNode, float, float]]:
        tree = RCTree("src", driver_resistance=0.0)
        loads: list[tuple[TreeNode, str]] = []
        counter = [0]

        def emit(path: StagePath, parent: str) -> None:
            counter[0] += 1
            name = f"p{counter[0]}"
            if path.length > 0:
                n_seg = max(2, min(16, int(path.length / 200.0)))
                tree.add_wire(parent, name, path.length, self.tech.wire, n_seg)
            else:
                tree.add_node(name, parent, 1e-3, 0.0)
            if path.is_load:
                tree.add_cap(name, self._load_cap_of(path.end))
                loads.append((path.end, name))
            else:
                for branch in path.branches:
                    emit(branch, name)

        if structure.end is not None and not structure.is_load and structure.length == 0.0 and structure.branches:
            for branch in structure.branches:
                emit(branch, "src")
        else:
            emit(structure, "src")
        moments = rc_tree_moments(tree, order=2)
        rows: list[tuple[TreeNode, float, float]] = []
        for node, rc_name in loads:
            m1, m2 = moments[rc_name]
            delay = d2m_delay(abs(m1), abs(m2))
            slew = elmore_slew_peri(
                lognormal_step_slew(abs(m1), abs(m2)), input_slew
            )
            rows.append((node, delay, slew))
        return rows

    # ------------------------------------------------------------------
    # Sub-tree bounds (memoized)
    # ------------------------------------------------------------------

    def clear_cache(self) -> None:
        self._bounds_cache.clear()
        self._vbounds_cache.clear()
        self._cap_cache.clear()

    def remap_node_ids(self, mapping: dict[int, int]) -> None:
        """Rewrite memoized keys after a node-id renumbering.

        The parallel/batched merge flows renumber a level's freshly
        created nodes into serial creation order; cached bounds and caps
        are keyed by node id, so the keys must follow the (bijective)
        renumbering or a later node could hit a stale entry under its
        reassigned id.
        """
        if not mapping:
            return
        for cache in (self._bounds_cache, self._vbounds_cache):
            moved = [key for key in cache if key[0] in mapping]
            # Pop everything first: a moved key's target may itself be a
            # moved key, and reinserting early would clobber its entry.
            entries = [(key, cache.pop(key)) for key in moved]
            for key, bounds in entries:
                cache[(mapping[key[0]], *key[1:])] = bounds
        moved = [node_id for node_id in self._cap_cache if node_id in mapping]
        entries = [(node_id, self._cap_cache.pop(node_id)) for node_id in moved]
        for node_id, cap in entries:
            self._cap_cache[mapping[node_id]] = cap
        if self._soa is not None:
            self._soa.remap_ids(mapping)

    @staticmethod
    def _buckets_of(slew: float) -> tuple[int, float]:
        """Bucket index below ``slew`` plus the interpolation fraction."""
        q = slew / SLEW_QUANTUM
        k = int(q)  # slews are non-negative, so int() floors
        return k, q - k

    @staticmethod
    def _lerp_bounds(
        lo: SubtreeBounds, hi: SubtreeBounds, frac: float
    ) -> SubtreeBounds:
        return SubtreeBounds(
            lo.min_delay + (hi.min_delay - lo.min_delay) * frac,
            lo.max_delay + (hi.max_delay - lo.max_delay) * frac,
            lo.worst_slew + (hi.worst_slew - lo.worst_slew) * frac,
        )

    def buffer_subtree_bounds(
        self, buffer_node: TreeNode, input_slew: float
    ) -> SubtreeBounds:
        """Delay bounds from a BUFFER node's *input* to the sinks below.

        Interpolated between the two neighboring quantization buckets,
        each evaluated (and memoized) at its representative slew, so the
        result does not depend on which query filled the cache first
        (see the module docstring). The cache-hit path is inlined — this
        sits inside every bisection probe of every merge.
        """
        if buffer_node.kind is not NodeKind.BUFFER:
            raise ValueError(f"{buffer_node} is not a buffer")
        q = input_slew / SLEW_QUANTUM
        k = int(q)  # slews are non-negative, so int() floors
        cache = self._bounds_cache
        node_id = buffer_node.id
        lo = cache.get((node_id, k))
        if lo is None:
            lo = self._buffer_bucket_bounds(buffer_node, k)
        frac = q - k
        if frac == 0.0:
            return lo
        hi = cache.get((node_id, k + 1))
        if hi is None:
            hi = self._buffer_bucket_bounds(buffer_node, k + 1)
        return SubtreeBounds(
            lo[0] + (hi[0] - lo[0]) * frac,
            lo[1] + (hi[1] - lo[1]) * frac,
            lo[2] + (hi[2] - lo[2]) * frac,
        )

    def _buffer_bucket_bounds(
        self, buffer_node: TreeNode, bucket: int
    ) -> SubtreeBounds:
        key = (buffer_node.id, bucket)
        cached = self._bounds_cache.get(key)
        if cached is None:
            timing = self.stage_timing(buffer_node, bucket * SLEW_QUANTUM)
            cached = self._accumulate(timing)
            self._bounds_cache[key] = cached
        return cached

    def _accumulate(self, timing: StageTiming) -> SubtreeBounds:
        lo, hi, worst = float("inf"), float("-inf"), 0.0
        if not timing.loads:
            return SubtreeBounds(0.0, 0.0, 0.0)
        for node, delay, slew in timing.loads:
            worst = max(worst, slew)
            if node.kind is NodeKind.SINK:
                lo = min(lo, delay)
                hi = max(hi, delay)
            elif node.kind is NodeKind.BUFFER:
                below = self.buffer_subtree_bounds(node, slew)
                lo = min(lo, delay + below.min_delay)
                hi = max(hi, delay + below.max_delay)
                worst = max(worst, below.worst_slew)
            else:
                # Dangling merge/steiner endpoint: treat as zero-cap leaf.
                lo = min(lo, delay)
                hi = max(hi, delay)
        return SubtreeBounds(lo, hi, worst)

    def subtree_bounds(
        self,
        node: TreeNode,
        input_slew: float,
        drive: str | None = None,
    ) -> SubtreeBounds:
        """Delay bounds from an arbitrary sub-tree root to its sinks.

        For a BUFFER root the bounds start at the buffer input (intrinsic
        delay included). For MERGE/STEINER/SINK roots, a *virtual* driver
        of type ``drive`` (default: the engine's ``virtual_drive``) is
        assumed at the node with the given input slew, and its intrinsic
        delay is excluded — matching how merge-routing reasons about
        not-yet-driven sub-trees.
        """
        if node.kind is NodeKind.BUFFER:
            return self.buffer_subtree_bounds(node, input_slew)
        if node.kind is NodeKind.SINK:
            return SubtreeBounds(0.0, 0.0, input_slew)
        drive = drive or self.virtual_drive
        k, frac = self._buckets_of(input_slew)
        lo = self._virtual_bucket_bounds(node, k, drive)
        if frac == 0.0:
            return lo
        return self._lerp_bounds(
            lo, self._virtual_bucket_bounds(node, k + 1, drive), frac
        )

    def _virtual_bucket_bounds(
        self, node: TreeNode, bucket: int, drive: str
    ) -> SubtreeBounds:
        key = (node.id, bucket, drive)
        cached = self._vbounds_cache.get(key)
        if cached is not None:
            return cached
        if not node.children:
            bounds = SubtreeBounds(0.0, 0.0, 0.0)
        else:
            if len(node.children) == 1:
                child = node.children[0]
                structure = _trace_path(child, child.wire_to_parent)
            else:
                structure = StagePath(
                    0.0,
                    node,
                    [_trace_path(c, c.wire_to_parent) for c in node.children],
                )
            rows = self._eval_structure(
                drive, bucket * SLEW_QUANTUM, structure, False
            )
            bounds = self._accumulate(StageTiming(tuple(rows)))
        self._vbounds_cache[key] = bounds
        return bounds

    def subtree_bounds_many(
        self,
        items: list[tuple[TreeNode, float]],
        drive: str | None = None,
    ) -> list[SubtreeBounds]:
        """Batched :meth:`subtree_bounds` over (node, input slew) items.

        Splits the batch into cache hits and grouped misses: every bucket
        needed by any item is filled once through the scalar path, then
        each item assembles its interpolated answer from the (now warm)
        caches — bit for bit what per-item scalar calls would return,
        because cached bucket values are functions of their key alone.
        """
        virtual = drive or self.virtual_drive
        needed: dict[int, tuple[str, TreeNode, set[int]]] = {}
        for node, slew in items:
            if node.kind is NodeKind.SINK:
                continue
            k, frac = self._buckets_of(slew)
            buckets = (k,) if frac == 0.0 else (k, k + 1)
            if node.kind is NodeKind.BUFFER:
                kind, cache, suffix = "b", self._bounds_cache, ()
            else:
                kind, cache, suffix = "v", self._vbounds_cache, (virtual,)
            missing = None
            for b in buckets:
                if (node.id, b, *suffix) in cache:
                    self.bounds_cache_hits += 1
                    continue
                self.bounds_cache_misses += 1
                if missing is None:
                    job = needed.get(node.id)
                    if job is None:
                        job = needed[node.id] = (kind, node, set())
                    missing = job[2]
                # A node's missing buckets resolve as one job, so the
                # stage walk amortizes over the interpolation pair (and
                # over every pair probing this node in the same round).
                missing.add(b)
        if needed:
            self._prefill_bucket_jobs(
                [
                    (kind, node, sorted(buckets), virtual)
                    for kind, node, buckets in needed.values()
                ]
            )
        return [self.subtree_bounds(node, slew, drive) for node, slew in items]

    #: Fit groups smaller than this evaluate with the compiled scalar
    #: evaluators — numpy dispatch on tiny batches costs more than the
    #: handful of scalar calls. Results are bit-identical either way.
    _SCALAR_GROUP_ROWS = 16

    def _prefill_bucket_jobs(
        self, jobs: list[tuple[str, TreeNode, list[int], str]]
    ) -> None:
        """Fill missing bounds buckets (SoA columns when mirrored).

        When a structure-of-arrays mirror is attached and healthy, the
        flat-stage kernel answers the whole job list from its columns
        (delegating unmirrored/deep jobs back to the object walk
        itself); otherwise — or after the mirror degrades — every job
        takes the object walk. Stored values are bit-identical either
        way.
        """
        soa = self._soa
        if soa is not None and soa.prefill_bounds(self, jobs):
            return
        self._prefill_bucket_jobs_object(jobs)

    def _prefill_bucket_jobs_object(
        self, jobs: list[tuple[str, TreeNode, list[int], str]]
    ) -> None:
        """Fill missing bounds buckets, batching flat stage evaluations.

        Each job is one node with the (uncached) buckets it needs
        (``kind`` "b" for a buffer stage, "v" for a virtual-driver root);
        the stage structure is walked once per node and evaluated at
        every requested bucket. The characterized stage shapes — one
        single-wire or one two-branch component with load ends — cover
        almost every stage under aggressive buffer insertion, so their
        fit evaluations are grouped per (drive, load) across all jobs
        and answered with one ``predict_many`` round each; the per-row
        compositions repeat the scalar code's float ops, so the cached
        values are bit for bit what the scalar recursion would have
        stored. Rows ending in buffers need the child's bounds: missing
        child buckets form the next wavefront (strictly deeper, so the
        recursion is bounded by tree depth). Rare non-flat shapes fall
        back to the scalar path per job.
        """
        pending: list[dict] = []
        single_groups: dict[tuple, list] = {}
        branch_groups: dict[tuple, list] = {}
        for kind, node, buckets, vdrive in jobs:
            if kind == "b":
                structure = stage_structure(node)
                drive = node.buffer.name
                include = True
            else:
                if not node.children:
                    for bucket in buckets:
                        key = (node.id, bucket, vdrive)
                        if key not in self._vbounds_cache:
                            self._vbounds_cache[key] = SubtreeBounds(0.0, 0.0, 0.0)
                    continue
                if len(node.children) == 1:
                    child = node.children[0]
                    structure = _trace_path(child, child.wire_to_parent)
                else:
                    structure = StagePath(
                        0.0,
                        node,
                        [_trace_path(c, c.wire_to_parent) for c in node.children],
                    )
                drive = vdrive
                include = False
            entry = {
                "kind": kind,
                "node": node,
                "buckets": buckets,
                "vdrive": vdrive,
                "rows": {},
                "scalar": False,
            }
            pending.append(entry)
            if structure is None:
                for bucket in buckets:
                    entry["rows"][bucket] = []
            elif structure.is_load:
                load_name = self.library.load_name_for_cap(
                    self._load_cap_of(structure.end)
                )
                group = single_groups.setdefault((drive, load_name, include), [])
                for bucket in buckets:
                    entry["rows"][bucket] = [None]
                    group.append(
                        (
                            entry,
                            bucket,
                            bucket * SLEW_QUANTUM,
                            structure.length,
                            structure.end,
                        )
                    )
            else:
                branches = structure.branches
                if (
                    len(branches) == 2
                    and branches[0].is_load
                    and branches[1].is_load
                ):
                    group = branch_groups.setdefault((drive, include), [])
                    for bucket in buckets:
                        entry["rows"][bucket] = [None, None]
                        group.append(
                            (
                                entry,
                                bucket,
                                bucket * SLEW_QUANTUM,
                                structure.length,
                                branches[0],
                                branches[1],
                            )
                        )
                else:
                    entry["scalar"] = True

        for (drive, load_name, include), rows in single_groups.items():
            fits = self.library.single[(drive, load_name)]
            if len(rows) < self._SCALAR_GROUP_ROWS:
                f_delay = fits["wire_delay"].predict
                f_slew = fits["wire_slew"].predict
                f_buf = fits["buffer_delay"].predict if include else None
                for entry, bucket, rep, length, end in rows:
                    delay = max(0.0, f_delay(rep, length))
                    if include:
                        delay = delay + max(0.0, f_buf(rep, length))
                    entry["rows"][bucket][0] = (
                        end,
                        delay,
                        max(1e-15, f_slew(rep, length)),
                    )
                continue
            x = np.empty((len(rows), 2))
            for k, (__, __b, rep, length, __end) in enumerate(rows):
                x[k, 0] = rep
                x[k, 1] = length
            wire_delay = fits["wire_delay"].predict_many(x)
            wire_slew = fits["wire_slew"].predict_many(x)
            buffer_delay = (
                fits["buffer_delay"].predict_many(x) if include else None
            )
            for k, (entry, bucket, __, __len, end) in enumerate(rows):
                delay = max(0.0, float(wire_delay[k]))
                if include:
                    delay = delay + max(0.0, float(buffer_delay[k]))
                entry["rows"][bucket][0] = (
                    end,
                    delay,
                    max(1e-15, float(wire_slew[k])),
                )

        for (drive, include), rows in branch_groups.items():
            fits = self.library.branch[drive]
            if len(rows) < self._SCALAR_GROUP_ROWS:
                for entry, bucket, rep, stem, left, right in rows:
                    args = (
                        rep,
                        stem,
                        left.length,
                        right.length,
                        self._load_cap_of(left.end),
                        self._load_cap_of(right.end),
                    )
                    base = (
                        max(0.0, fits["buffer_delay"].predict(*args))
                        if include
                        else 0.0
                    )
                    entry["rows"][bucket][0] = (
                        left.end,
                        base + max(0.0, fits["left_delay"].predict(*args)),
                        max(1e-15, fits["left_slew"].predict(*args)),
                    )
                    entry["rows"][bucket][1] = (
                        right.end,
                        base + max(0.0, fits["right_delay"].predict(*args)),
                        max(1e-15, fits["right_slew"].predict(*args)),
                    )
                continue
            n = len(rows)
            inputs = np.empty((4, n))
            for k, (__, __b, rep, stem, left, right) in enumerate(rows):
                inputs[0, k] = rep
                inputs[1, k] = stem
                inputs[2, k] = left.length
                inputs[3, k] = right.length
            left_caps = np.array(
                [self._load_cap_of(r[4].end) for r in rows]
            )
            right_caps = np.array(
                [self._load_cap_of(r[5].end) for r in rows]
            )
            batch = self.library.branch_component_many(
                drive,
                inputs[0],
                inputs[1],
                inputs[2],
                inputs[3],
                left_caps,
                right_caps,
                include_buffer_delay=include,
            )
            for k, (entry, bucket, __, __stem, left, right) in enumerate(rows):
                base = float(batch.buffer_delay[k]) if include else 0.0
                entry["rows"][bucket][0] = (
                    left.end,
                    base + float(batch.left_delay[k]),
                    float(batch.left_slew[k]),
                )
                entry["rows"][bucket][1] = (
                    right.end,
                    base + float(batch.right_delay[k]),
                    float(batch.right_slew[k]),
                )

        next_jobs: dict[int, tuple[str, TreeNode, set[int]]] = {}
        for entry in pending:
            if entry["scalar"]:
                continue
            for rows in entry["rows"].values():
                for end, __, slew in rows:
                    if end.kind is not NodeKind.BUFFER:
                        continue
                    k0, frac = self._buckets_of(slew)
                    for b in (k0,) if frac == 0.0 else (k0, k0 + 1):
                        if (end.id, b) in self._bounds_cache:
                            continue
                        job = next_jobs.get(end.id)
                        if job is None:
                            job = next_jobs[end.id] = ("b", end, set())
                        job[2].add(b)
        if next_jobs:
            self._prefill_bucket_jobs(
                [
                    (kind, node, sorted(buckets), None)
                    for kind, node, buckets in next_jobs.values()
                ]
            )

        for entry in pending:
            node = entry["node"]
            for bucket in entry["buckets"]:
                if entry["kind"] == "b":
                    if entry["scalar"]:
                        self._buffer_bucket_bounds(node, bucket)
                    else:
                        key = (node.id, bucket)
                        if key not in self._bounds_cache:
                            self._bounds_cache[key] = self._accumulate(
                                StageTiming(tuple(entry["rows"][bucket]))
                            )
                elif entry["scalar"]:
                    self._virtual_bucket_bounds(node, bucket, entry["vdrive"])
                else:
                    key = (node.id, bucket, entry["vdrive"])
                    if key not in self._vbounds_cache:
                        self._vbounds_cache[key] = self._accumulate(
                            StageTiming(tuple(entry["rows"][bucket]))
                        )

    # ------------------------------------------------------------------
    # Full-tree analysis
    # ------------------------------------------------------------------

    def analyze(self, root: TreeNode, source_slew: float) -> TreeTiming:
        """Arrival/slew at every stage load and sink of a full tree.

        ``root`` must be the SOURCE node (or any stage root); ``source_slew``
        is the slew of the waveform the source presents.
        """
        timing = TreeTiming()
        queue: list[tuple[TreeNode, float, float]] = [(root, source_slew, 0.0)]
        while queue:
            stage_root, slew_in, base = queue.pop()
            stage = self.stage_timing(stage_root, slew_in)
            for node, delay, slew in stage.loads:
                timing.arrivals[node.id] = NodeTiming(base + delay, slew)
                if node.kind is NodeKind.BUFFER:
                    queue.append((node, slew, base + delay))
                elif node.kind is NodeKind.SINK:
                    timing.sink_nodes.append(node)
        return timing
