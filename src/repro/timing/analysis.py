"""Library-driven top-down timing analysis (the paper's engine).

Walks a clock tree stage by stage from the root, propagating *actual*
slews through the characterized delay/slew library: each stage's input
slew is the slew computed at its driver's input, so slew-dependent buffer
intrinsic delay is accounted for — the effect the paper shows breaks
Elmore/moment-based CTS (Sec. 3.1).

During bottom-up synthesis the driver of a sub-tree does not exist yet, so
sub-tree delays are computed under the paper's worst-case assumption: the
(virtual) driver's input slew equals the slew limit (Sec. 4.2.2). These
sub-tree evaluations are memoized on (node, quantized input slew): once a
sub-tree is merged its geometry never changes, and slew changes are damped
after a buffer stage, so the cache hit rate during binary search is high.

Stage shapes beyond the characterized single-wire / two-branch components
(they are rare under aggressive buffer insertion) are composed recursively:
a nested merge is first treated as a virtual load whose capacitance is the
collapsed downstream stage capacitance, then expanded with a virtual driver
at the merge point using the slew computed there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.charlib.library import DelaySlewLibrary
from repro.tech.technology import Technology
from repro.timing.moments import (
    d2m_delay,
    elmore_slew_peri,
    lognormal_step_slew,
    rc_tree_moments,
)
from repro.timing.rctree import RCTree
from repro.tree.nodes import NodeKind, TreeNode
from repro.tree.stages_map import StagePath, _trace_path, stage_structure

#: Slew quantization for memoization (seconds).
SLEW_QUANTUM = 0.25e-12


@dataclass(frozen=True)
class NodeTiming:
    """Arrival time and slew at one tree node."""

    arrival: float
    slew: float


@dataclass(frozen=True)
class StageTiming:
    """Delays (from the stage input) and slews at a stage's load nodes."""

    loads: tuple[tuple[TreeNode, float, float], ...]  # (node, delay, slew)


@dataclass(frozen=True)
class SubtreeBounds:
    """Min/max delay from a point to the sinks below it, plus worst slew."""

    min_delay: float
    max_delay: float
    worst_slew: float

    @property
    def skew(self) -> float:
        return self.max_delay - self.min_delay


@dataclass
class TreeTiming:
    """Full-tree analysis result."""

    arrivals: dict[int, NodeTiming] = field(default_factory=dict)
    sink_nodes: list[TreeNode] = field(default_factory=list)

    @property
    def latency(self) -> float:
        return max(self.arrivals[s.id].arrival for s in self.sink_nodes)

    @property
    def min_sink_arrival(self) -> float:
        return min(self.arrivals[s.id].arrival for s in self.sink_nodes)

    @property
    def skew(self) -> float:
        return self.latency - self.min_sink_arrival

    @property
    def worst_slew(self) -> float:
        return max(t.slew for t in self.arrivals.values())


class LibraryTimingEngine:
    """Top-down delay/slew analysis backed by the characterized library."""

    def __init__(
        self,
        library: DelaySlewLibrary,
        tech: Technology,
        virtual_drive: str | None = None,
    ):
        self.library = library
        self.tech = tech
        #: Buffer type assumed to drive not-yet-driven sub-trees.
        self.virtual_drive = virtual_drive or library.buffer_names[-1]
        self._bounds_cache: dict[tuple[int, int], SubtreeBounds] = {}

    # ------------------------------------------------------------------
    # Stage evaluation
    # ------------------------------------------------------------------

    def _load_cap_of(self, node: TreeNode) -> float:
        if node.kind is NodeKind.BUFFER:
            return node.buffer.input_cap(self.tech)
        if node.kind is NodeKind.SINK:
            return node.cap
        # Collapsed nested structure: wire + loads below this node.
        cap = node.unbuffered_cap(self.tech.wire.capacitance_per_unit)
        for n in node.walk():
            if n is not node and n.kind is NodeKind.BUFFER:
                cap += n.buffer.input_cap(self.tech)
        return cap

    def _eval_structure(
        self,
        drive: str,
        input_slew: float,
        structure: StagePath,
        include_buffer_delay: bool,
    ) -> list[tuple[TreeNode, float, float]]:
        """Evaluate one stage structure; returns (load, delay, slew) rows.

        ``delay`` is measured from the stage input (driver's input when
        ``include_buffer_delay``; the driver's output otherwise).
        """
        if structure.is_load:
            load_name = self.library.load_name_for_cap(
                self._load_cap_of(structure.end)
            )
            delay, slew = self.library.single_wire_delay_slew(
                drive,
                load_name,
                input_slew,
                structure.length,
                include_buffer_delay,
            )
            return [(structure.end, delay, slew)]
        branches = structure.branches
        if len(branches) != 2:
            # Rare >2-way split (Steiner tap): pair up recursively by
            # treating all but the first branch as one collapsed side.
            branches = [
                branches[0],
                StagePath(0.0, structure.end, structure.branches[1:]),
            ]
        left, right = branches
        timing = self.library.branch_component(
            drive,
            input_slew,
            structure.length,
            left.length,
            right.length,
            self._cap_of_branch(left),
            self._cap_of_branch(right),
        )
        base = timing.buffer_delay if include_buffer_delay else 0.0
        rows: list[tuple[TreeNode, float, float]] = []
        for path, delay, slew in (
            (left, timing.left_delay, timing.left_slew),
            (right, timing.right_delay, timing.right_slew),
        ):
            if path.is_load:
                rows.append((path.end, base + delay, slew))
            else:
                # Nested merge: expand with a virtual driver at the merge
                # point whose input slew is the slew computed there; the
                # virtual buffer's own delay is excluded.
                nested = self._eval_structure(drive, slew, path, False)
                rows.extend(
                    (node, base + delay + d2, s2) for node, d2, s2 in nested
                )
        return rows

    def _cap_of_branch(self, path: StagePath) -> float:
        if path.is_load:
            return self._load_cap_of(path.end)
        return (
            self.tech.wire.capacitance_per_unit
            * sum(b.length for b in path.branches)
            + self._load_cap_of(path.end)
        )

    def stage_timing(self, stage_root: TreeNode, input_slew: float) -> StageTiming:
        """Delays/slews at the loads of the stage rooted at a SOURCE/BUFFER."""
        structure = stage_structure(stage_root)
        if structure is None:
            return StageTiming(())
        if stage_root.kind is NodeKind.BUFFER:
            rows = self._eval_structure(
                stage_root.buffer.name, input_slew, structure, True
            )
        else:
            # SOURCE stage: the ideal (zero-impedance) source drives a bare
            # RC region; the characterized library does not apply (there is
            # no driving buffer), so use moment metrics with PERI ramp
            # composition, which are accurate for driver-less RC trees.
            rows = self._eval_source_structure(input_slew, structure)
        return StageTiming(tuple(rows))

    def _eval_source_structure(
        self, input_slew: float, structure: StagePath
    ) -> list[tuple[TreeNode, float, float]]:
        tree = RCTree("src", driver_resistance=0.0)
        loads: list[tuple[TreeNode, str]] = []
        counter = [0]

        def emit(path: StagePath, parent: str) -> None:
            counter[0] += 1
            name = f"p{counter[0]}"
            if path.length > 0:
                n_seg = max(2, min(16, int(path.length / 200.0)))
                tree.add_wire(parent, name, path.length, self.tech.wire, n_seg)
            else:
                tree.add_node(name, parent, 1e-3, 0.0)
            if path.is_load:
                tree.add_cap(name, self._load_cap_of(path.end))
                loads.append((path.end, name))
            else:
                for branch in path.branches:
                    emit(branch, name)

        if structure.end is not None and not structure.is_load and structure.length == 0.0 and structure.branches:
            for branch in structure.branches:
                emit(branch, "src")
        else:
            emit(structure, "src")
        moments = rc_tree_moments(tree, order=2)
        rows: list[tuple[TreeNode, float, float]] = []
        for node, rc_name in loads:
            m1, m2 = moments[rc_name]
            delay = d2m_delay(abs(m1), abs(m2))
            slew = elmore_slew_peri(
                lognormal_step_slew(abs(m1), abs(m2)), input_slew
            )
            rows.append((node, delay, slew))
        return rows

    # ------------------------------------------------------------------
    # Sub-tree bounds (memoized)
    # ------------------------------------------------------------------

    def clear_cache(self) -> None:
        self._bounds_cache.clear()

    def remap_node_ids(self, mapping: dict[int, int]) -> None:
        """Rewrite memoized bounds keys after a node-id renumbering.

        The parallel merge flow renumbers a level's freshly created nodes
        into serial creation order; cached bounds are keyed by node id, so
        the keys must follow the (bijective) renumbering or a later node
        could hit a stale entry under its reassigned id.
        """
        if not mapping or not self._bounds_cache:
            return
        cache = self._bounds_cache
        moved = [key for key in cache if key[0] in mapping]
        entries = [(key, cache.pop(key)) for key in moved]
        for (node_id, quant), bounds in entries:
            cache[(mapping[node_id], quant)] = bounds

    def _quantize(self, slew: float) -> int:
        return int(round(slew / SLEW_QUANTUM))

    def buffer_subtree_bounds(
        self, buffer_node: TreeNode, input_slew: float
    ) -> SubtreeBounds:
        """Delay bounds from a BUFFER node's *input* to the sinks below."""
        if buffer_node.kind is not NodeKind.BUFFER:
            raise ValueError(f"{buffer_node} is not a buffer")
        key = (buffer_node.id, self._quantize(input_slew))
        cached = self._bounds_cache.get(key)
        if cached is not None:
            return cached
        timing = self.stage_timing(buffer_node, input_slew)
        bounds = self._accumulate(timing)
        self._bounds_cache[key] = bounds
        return bounds

    def _accumulate(self, timing: StageTiming) -> SubtreeBounds:
        lo, hi, worst = float("inf"), float("-inf"), 0.0
        if not timing.loads:
            return SubtreeBounds(0.0, 0.0, 0.0)
        for node, delay, slew in timing.loads:
            worst = max(worst, slew)
            if node.kind is NodeKind.SINK:
                lo = min(lo, delay)
                hi = max(hi, delay)
            elif node.kind is NodeKind.BUFFER:
                below = self.buffer_subtree_bounds(node, slew)
                lo = min(lo, delay + below.min_delay)
                hi = max(hi, delay + below.max_delay)
                worst = max(worst, below.worst_slew)
            else:
                # Dangling merge/steiner endpoint: treat as zero-cap leaf.
                lo = min(lo, delay)
                hi = max(hi, delay)
        return SubtreeBounds(lo, hi, worst)

    def subtree_bounds(
        self,
        node: TreeNode,
        input_slew: float,
        drive: str | None = None,
    ) -> SubtreeBounds:
        """Delay bounds from an arbitrary sub-tree root to its sinks.

        For a BUFFER root the bounds start at the buffer input (intrinsic
        delay included). For MERGE/STEINER/SINK roots, a *virtual* driver
        of type ``drive`` (default: the engine's ``virtual_drive``) is
        assumed at the node with the given input slew, and its intrinsic
        delay is excluded — matching how merge-routing reasons about
        not-yet-driven sub-trees.
        """
        if node.kind is NodeKind.BUFFER:
            return self.buffer_subtree_bounds(node, input_slew)
        if node.kind is NodeKind.SINK:
            return SubtreeBounds(0.0, 0.0, input_slew)
        drive = drive or self.virtual_drive
        if not node.children:
            return SubtreeBounds(0.0, 0.0, 0.0)
        if len(node.children) == 1:
            child = node.children[0]
            structure = _trace_path(child, child.wire_to_parent)
        else:
            structure = StagePath(
                0.0,
                node,
                [_trace_path(c, c.wire_to_parent) for c in node.children],
            )
        rows = self._eval_structure(drive, input_slew, structure, False)
        return self._accumulate(StageTiming(tuple(rows)))

    # ------------------------------------------------------------------
    # Full-tree analysis
    # ------------------------------------------------------------------

    def analyze(self, root: TreeNode, source_slew: float) -> TreeTiming:
        """Arrival/slew at every stage load and sink of a full tree.

        ``root`` must be the SOURCE node (or any stage root); ``source_slew``
        is the slew of the waveform the source presents.
        """
        timing = TreeTiming()
        queue: list[tuple[TreeNode, float, float]] = [(root, source_slew, 0.0)]
        while queue:
            stage_root, slew_in, base = queue.pop()
            stage = self.stage_timing(stage_root, slew_in)
            for node, delay, slew in stage.loads:
                timing.arrivals[node.id] = NodeTiming(base + delay, slew)
                if node.kind is NodeKind.BUFFER:
                    queue.append((node, slew, base + delay))
                elif node.kind is NodeKind.SINK:
                    timing.sink_nodes.append(node)
        return timing
