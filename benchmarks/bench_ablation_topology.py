"""Extension — topology comparison: aggressive CTS vs symmetric H-tree vs DME.

Places the paper's flow against the two classic alternatives on the same
instance:

- the unbuffered zero-skew DME tree has (near-)zero *Elmore* skew but
  catastrophic simulated slew under 10X parasitics (Ch. 3's argument);
- the buffered symmetric H-tree controls slew but spends wirelength
  covering the die;
- the paper's flow controls slew and routes to the sinks.
"""

import pytest

from conftest import DEFAULT_SCALE, EVAL_DT, report

from repro.baselines import DMESynthesizer, HTreeSynthesizer
from repro.benchio import gsrc_instance
from repro.core import AggressiveBufferedCTS
from repro.evalx import evaluate_tree, format_table
from repro.evalx.harness import scale_instance
from repro.tech import default_technology


def test_ablation_topology(benchmark):
    tech = default_technology()
    inst = scale_instance(gsrc_instance("r1"), scale=min(DEFAULT_SCALE, 24))
    sinks = inst.sink_pairs()

    def run_all():
        out = {}
        ours = AggressiveBufferedCTS(tech=tech).synthesize(sinks, inst.source)
        out["aggressive (paper)"] = evaluate_tree(ours.tree, tech, dt=EVAL_DT)
        h = HTreeSynthesizer(tech=tech).synthesize(sinks)
        out["symmetric H-tree"] = evaluate_tree(h.tree, tech, dt=EVAL_DT)
        dme = DMESynthesizer(tech).synthesize(sinks)
        # The unbuffered tree is one giant stage; coarser wire sections
        # keep its (single) dense solve tractable, and its slews are so
        # large that section granularity cannot change the verdict.
        out["DME (unbuffered)"] = evaluate_tree(
            dme, tech, dt=4e-12, segment_length=2500.0
        )
        return out

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [
            name,
            m.worst_slew * 1e12,
            m.skew * 1e12,
            m.latency * 1e9,
            m.n_buffers,
            round(m.wirelength / 1e3),
        ]
        for name, m in runs.items()
    ]
    report(
        "ablation_topology",
        format_table(
            ["flow", "slew[ps]", "skew[ps]", "lat[ns]", "buffers", "wl[ku]"],
            rows,
            title="Extension — topology comparison (r1-scaled, 10X parasitics)",
        ),
    )
    ours = runs["aggressive (paper)"]
    htree = runs["symmetric H-tree"]
    dme = runs["DME (unbuffered)"]
    assert ours.worst_slew <= 100e-12
    assert htree.worst_slew <= 100e-12
    assert dme.worst_slew > 150e-12  # unbuffered: slew catastrophe
    # The regular H is symmetric only to its leaves; the uneven last-mile
    # attachments dominate its skew, which active balancing avoids.
    assert ours.skew < htree.skew
    assert ours.wirelength < 2.0 * htree.wirelength