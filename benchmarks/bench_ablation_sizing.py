"""Ablation A5 — intelligent buffer sizing vs a single fixed size.

The paper's router evaluates every library size at and ahead of the
expansion cell ("intelligent buffer sizing"). Restricting the library to
one size must still satisfy slew (insertion adapts by spacing buffers
closer) but costs buffers and/or skew.
"""

import pytest

from conftest import DEFAULT_SCALE, EVAL_DT, report

from repro.benchio import gsrc_instance
from repro.core import AggressiveBufferedCTS
from repro.evalx import evaluate_tree, format_table, paper_data
from repro.evalx.harness import scale_instance
from repro.tech import cts_buffer_library, default_technology


def test_ablation_sizing(benchmark):
    tech = default_technology()
    inst = scale_instance(gsrc_instance("r1"), scale=DEFAULT_SCALE)
    full_lib = cts_buffer_library()
    variants = {
        "all-three-sizes": full_lib,
        "only-10X": full_lib.subset(["BUF10X"]),
        "only-30X": full_lib.subset(["BUF30X"]),
    }

    def run_all():
        from repro.charlib import load_default_library

        full_char = load_default_library(tech)
        out = {}
        for name, buffers in variants.items():
            # A restricted buffer library gets a matching restricted
            # characterization: the full library's fits are self-contained
            # per (drive, load) combination, so filtering is exact.
            char = (
                full_char
                if name == "all-three-sizes"
                else _restrict(full_char, buffers.names)
            )
            cts = AggressiveBufferedCTS(tech=tech, buffers=buffers, library=char)
            result = cts.synthesize(inst.sink_pairs(), inst.source)
            out[name] = (result, evaluate_tree(result.tree, tech, dt=EVAL_DT))
        return out

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [
            name,
            metrics.worst_slew * 1e12,
            metrics.skew * 1e12,
            metrics.n_buffers,
            round(metrics.wirelength / 1e3),
        ]
        for name, (result, metrics) in runs.items()
    ]
    report(
        "ablation_sizing",
        format_table(
            ["library", "slew[ps]", "skew[ps]", "buffers", "wl[ku]"],
            rows,
            title="Ablation — buffer sizing freedom (r1-scaled)",
        ),
    )
    for name, (__, metrics) in runs.items():
        assert metrics.worst_slew * 1e12 <= paper_data.SLEW_LIMIT_PS, name
    # A single small size needs more buffers than the full library.
    assert runs["only-10X"][1].n_buffers >= runs["all-three-sizes"][1].n_buffers


def _restrict(library, keep):
    from repro.charlib.library import DelaySlewLibrary

    buffers = [b for b in library.buffers.values() if b.name in keep]
    single = {
        key: fits
        for key, fits in library.single.items()
        if key[0] in keep and key[1] in keep
    }
    branch = {d: fits for d, fits in library.branch.items() if d in keep}
    return DelaySlewLibrary(library.tech_name, buffers, single, branch, library.meta)
