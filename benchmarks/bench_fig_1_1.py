"""Fig. 1.1 — wire output slew vs length for 20X and 30X drivers.

Shape claims: slew grows superlinearly with wire length; upsizing the
driver from 20X to 30X gives only a slight improvement (so sizing alone
cannot control slew — buffers must go into the wires).
"""

import pytest

from conftest import report

from repro.evalx import fig_1_1_rows, format_table


def test_fig_1_1(benchmark):
    rows = benchmark.pedantic(
        lambda: fig_1_1_rows(), rounds=1, iterations=1
    )
    table = format_table(
        ["length", "slew 20X [ps]", "slew 30X [ps]"],
        [[r["length"], r["slew_buf20x_ps"], r["slew_buf30x_ps"]] for r in rows],
        title="Fig 1.1 — wire output slew vs length (mini-SPICE)",
    )
    report("fig_1_1", table)

    slew20 = [r["slew_buf20x_ps"] for r in rows]
    slew30 = [r["slew_buf30x_ps"] for r in rows]
    lengths = [r["length"] for r in rows]
    # Slew grows monotonically and superlinearly with length.
    assert all(b > a for a, b in zip(slew20, slew20[1:]))
    growth = (slew20[-1] / slew20[0]) / (lengths[-1] / lengths[0])
    assert growth > 1.2, "slew growth should outpace linear"
    # 30X helps, but only slightly at long lengths (the paper's point).
    long_gain = (slew20[-1] - slew30[-1]) / slew20[-1]
    assert 0.0 < long_gain < 0.35
    # The slew limit is broken well within the chip scale, both sizes.
    assert slew30[-1] > 100.0
