"""Shared bench fixtures and reporting helpers.

Default runs use scaled-down instances (CI speed); set ``REPRO_FULL=1``
to run the published benchmark sizes with fine simulation timesteps.
Rendered tables are printed and archived under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.charlib import load_default_library
from repro.evalx.harness import full_run_requested
from repro.tech import default_technology

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Per-benchmark sink budget for the default (fast) runs.
DEFAULT_SCALE = int(os.environ.get("REPRO_SCALE", "40"))

#: Simulation timestep: 1 ps for full runs, 2 ps otherwise (validated to
#: change slew/skew by well under 2 ps).
EVAL_DT = 1.0e-12 if full_run_requested() else 2.0e-12


@pytest.fixture(scope="session")
def tech():
    return default_technology()


@pytest.fixture(scope="session", autouse=True)
def warm_library(tech):
    """Load (or build once) the characterization library up front so it
    never lands inside a timed region."""
    return load_default_library(tech)


def report(name: str, text: str) -> None:
    """Print a rendered table and archive it for EXPERIMENTS.md."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_sessionfinish(session, exitstatus):
    """Stitch all archived tables into benchmarks/results/REPORT.md."""
    if RESULTS_DIR.exists():
        from repro.evalx.report import write_report

        write_report(results_dir=RESULTS_DIR)
