"""Fig. 3.4 — buffer intrinsic delay surfaces: fit quality.

Shape claims: the 3rd/4th-order polynomial surfaces of (input slew, wire
length) reproduce simulated buffer intrinsic delay to ~1 ps (the paper:
"matches SPICE simulation results closely"); intrinsic delay varies by
~10 ps across the input-slew range (Sec. 3.1's 10X-buffer observation).
"""

import pytest

from conftest import report

from repro.charlib import load_default_library
from repro.evalx import fig_3_4_rows, format_table


def test_fig_3_4(benchmark, tech):
    rows = benchmark.pedantic(
        lambda: fig_3_4_rows(validate_points=8), rounds=1, iterations=1
    )
    table = format_table(
        ["drive", "load", "train rms", "train max", "R^2", "val mean", "val max"],
        [
            [
                r["drive"], r["load"], r["train_rms_ps"], r["train_max_ps"],
                round(r["r_squared"], 5), r["validate_mean_ps"], r["validate_max_ps"],
            ]
            for r in rows
        ],
        title="Fig 3.4 — buffer intrinsic delay fits (ps)",
    )
    report("fig_3_4", table)

    for row in rows:
        assert row["train_rms_ps"] < 1.0, row
        assert row["r_squared"] > 0.995, row
        assert row["validate_mean_ps"] < 2.0, row

    # Sec 3.1: intrinsic delay varies substantially with input slew.
    library = load_default_library(tech)
    fit_low = library.single_wire("BUF10X", "BUF20X", 30e-12, 1000.0)
    fit_high = library.single_wire("BUF10X", "BUF20X", 140e-12, 1000.0)
    variation = fit_high.buffer_delay - fit_low.buffer_delay
    assert variation > 8e-12, "intrinsic delay should vary ~10 ps with slew"
