"""Table 5.3 — H-structure re-estimation and correction.

Shape claims: correction is at least as good as re-estimation on average
(paper: -6.13% vs -2.43% mean skew ratio); per-case variance exists (some
cases get *worse*, as in the paper); flipping counts grow with benchmark
size; all variants keep the slew constraint.
"""

import numpy as np
import pytest

from conftest import DEFAULT_SCALE, EVAL_DT, report

from repro.benchio import gsrc_suite, ispd_suite
from repro.core.options import CTSOptions
from repro.evalx import paper_data, render_table_5_3
from repro.evalx.harness import full_run_requested, run_aggressive, scale_instance


def _instances():
    suite = gsrc_suite() + ispd_suite()
    if not full_run_requested():
        keep = {"r1", "r2", "f11", "f22"}
        suite = [inst for inst in suite if inst.name in keep]
    return [scale_instance(inst, scale=DEFAULT_SCALE) for inst in suite]


def test_table_5_3(benchmark):
    instances = _instances()

    def run_all():
        rows = []
        for inst in instances:
            runs = {
                mode: run_aggressive(
                    inst, options=CTSOptions(hstructure=mode), eval_dt=EVAL_DT
                )
                for mode in (None, "reestimate", "correct")
            }
            base_skew = runs[None].metrics.skew
            base = inst.name.split("@")[0]
            paper = paper_data.TABLE_5_3.get(base, {})
            rows.append(
                {
                    "bench": inst.name,
                    "orig_skew_ps": base_skew * 1e12,
                    "reestimate_skew_ps": runs["reestimate"].metrics.skew * 1e12,
                    "correct_skew_ps": runs["correct"].metrics.skew * 1e12,
                    "reestimate_ratio_pct": _ratio(
                        runs["reestimate"].metrics.skew, base_skew
                    ),
                    "correct_ratio_pct": _ratio(
                        runs["correct"].metrics.skew, base_skew
                    ),
                    "flippings": runs["correct"].synthesis.n_flippings,
                    "paper_reestimate_ratio_pct": paper.get("reestimate_ratio"),
                    "paper_correct_ratio_pct": paper.get("correct_ratio"),
                    "paper_flippings": paper.get("flippings"),
                    "_worst_slew_ps": max(
                        r.metrics.worst_slew for r in runs.values()
                    )
                    * 1e12,
                    "_sinks": inst.n_sinks,
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("table_5_3", render_table_5_3(rows))

    for row in rows:
        assert row["_worst_slew_ps"] <= paper_data.SLEW_LIMIT_PS, row["bench"]
        assert row["flippings"] >= 0
    # Per-case variance is expected (the paper has ratios from -48% to
    # +26%); the guardrail is that correction never blows skew up
    # catastrophically on average.
    mean_correct = float(np.mean([r["correct_ratio_pct"] for r in rows]))
    assert mean_correct < 60.0


def _ratio(skew: float, base: float) -> float:
    if base <= 0:
        return 0.0
    return 100.0 * (skew - base) / base
