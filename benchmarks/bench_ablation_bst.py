"""Extension — bounded-skew DME's wirelength-vs-budget trade-off (ref [4]).

The background result the paper's Chapter 2 discusses: relaxing the skew
bound B lets the (unbuffered, Elmore-based) DME avoid wire snaking, so
total wirelength decreases monotonically with B while the Elmore skew
stays within budget.
"""

import pytest

from conftest import DEFAULT_SCALE, report

from repro.baselines import BoundedSkewDME
from repro.benchio import gsrc_instance
from repro.evalx import format_table
from repro.evalx.harness import scale_instance
from repro.tech import default_technology
from repro.timing.elmore import elmore_delays
from repro.timing.rctree import RCTree
from repro.tree.nodes import NodeKind

BOUNDS_PS = (0.0, 25.0, 75.0, 250.0)


def _elmore_spread(tree, tech) -> float:
    rc = RCTree("root")
    sinks = []

    def build(node, parent):
        name = f"n{node.id}"
        if node.wire_to_parent > 0:
            rc.add_wire(parent, name, node.wire_to_parent, tech.wire, 6)
        else:
            rc.add_node(name, parent, 1e-6, 0.0)
        if node.kind is NodeKind.SINK:
            rc.add_cap(name, node.cap)
            sinks.append(name)
        for child in node.children:
            build(child, name)

    for child in tree.root.children:
        build(child, "root")
    delays = elmore_delays(rc)
    values = [delays[s] for s in sinks]
    return max(values) - min(values)


def test_ablation_bst_tradeoff(benchmark):
    tech = default_technology()
    inst = scale_instance(gsrc_instance("r2"), scale=DEFAULT_SCALE)
    sinks = inst.sink_pairs()

    def run_all():
        out = {}
        for bound_ps in BOUNDS_PS:
            result = BoundedSkewDME(tech, bound_ps * 1e-12).synthesize(sinks)
            out[bound_ps] = (
                result.tree.total_wirelength(),
                _elmore_spread(result.tree, tech),
            )
        return out

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [f"B = {b:.0f} ps", round(wl / 1e3, 1), spread * 1e12]
        for b, (wl, spread) in runs.items()
    ]
    report(
        "ablation_bst",
        format_table(
            ["skew budget", "wirelength [ku]", "elmore skew [ps]"],
            rows,
            title="Extension — bounded-skew DME trade-off (r2-scaled, unbuffered)",
        ),
    )
    wls = [runs[b][0] for b in BOUNDS_PS]
    # Wirelength decreases monotonically with the budget ...
    for tighter, looser in zip(wls, wls[1:]):
        assert looser <= tighter * 1.001
    assert wls[-1] < wls[0]
    # ... while the Elmore skew honors each budget (with a small
    # allowance for the lumped-wire approximation of the merge formula).
    for b in BOUNDS_PS:
        wl, spread = runs[b]
        assert spread <= b * 1e-12 + 12e-12
