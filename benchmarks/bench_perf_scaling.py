"""CTS synthesis wall-clock scaling (BENCH_cts_scaling.json).

Times the canonical scaling scenarios (50/200/1000/4000 sinks, with and
without macro blockages; ``REPRO_SCALE`` caps the ladder for CI smoke)
with the vectorized routing engine and with the retained seed-reference
implementations, then emits ``benchmarks/results/BENCH_cts_scaling.json``
— the perf-trajectory artifact all future PRs re-measure against.

Shape claims:
- every scenario completes and reports positive wall-clock seconds;
- wherever the reference baseline was timed at >= 200 sinks, the
  vectorized engine is faster;
- on the 1000-sink blockage scenario (the acceptance scenario, present
  in full runs) the speedup is at least 10x.
"""

from conftest import report

from repro.evalx.perfstats import (
    collect_scaling,
    render_scaling,
    scaling_sizes,
    write_scaling_json,
)


def test_perf_scaling():
    payload = collect_scaling()
    path = write_scaling_json(payload)
    report("perf_scaling", render_scaling(payload))
    assert path.exists() and path.stat().st_size > 0

    samples = payload["samples"]
    assert samples, "no scenarios ran"
    assert all(s["seconds"] > 0 for s in samples)
    # Both blockage modes covered at every size in the ladder.
    sizes = set(scaling_sizes())
    ran = {(s["n_sinks"], s["blockages"]) for s in samples}
    assert {(n, b) for n in sizes for b in (False, True)} <= ran

    for row in payload["speedups"]:
        if row["speedup"] is None:
            continue
        if row["n_sinks"] >= 200:
            assert row["speedup"] > 1.0, row
        if row["n_sinks"] == 1000 and row["blockages"]:
            assert row["speedup"] >= 10.0, (
                "acceptance scenario regressed below 10x: "
                f"{row['speedup']:.1f}x"
            )
