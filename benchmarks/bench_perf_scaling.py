"""CTS synthesis wall-clock scaling (BENCH_cts_scaling.json).

Times the canonical scaling scenarios (50/200/1000/4000 sinks, with and
without macro blockages; ``REPRO_SCALE`` caps the ladder for CI smoke)
with the vectorized routing engine, with the retained seed-reference
implementations, and — at 1000+ sinks — with the parallel merge-routing
pool, then emits ``benchmarks/results/BENCH_cts_scaling.json`` — the
perf-trajectory artifact all future PRs re-measure against.

Shape claims:
- every scenario completes and reports positive wall-clock seconds;
- wherever the reference baseline was timed at >= 200 sinks, the
  vectorized engine is faster;
- on the 1000-sink blockage scenario (the acceptance scenario, present
  in full runs) the speedup is at least 10x;
- parallel merge routing produces a tree bit-identical to the serial
  flow (checked on the 200-sink blockage scenario every run), and on
  machines with enough cores the 4000-sink blockage scenario is faster
  than serial;
- the lockstep batched commit phase produces a tree bit-identical to
  the scalar fallback (checked on the 200-sink blockage scenario every
  run) and, at 1000+ sinks, commit-phase wall-clock and batch-size rows
  are recorded with the batched commit no slower than the scalar
  fallback on the blockage scenarios;
- shared-window routing (level-scoped grid-tile cache + cross-pair
  batcher) produces a tree bit-identical to the per-pair-window
  fallback (checked on the 200-sink blockage scenario every run) and,
  at 1000+ sinks, ``route_speedups`` rows are recorded with the shared
  path no slower than per-pair windows on the blockage scenarios;
- the level-batched route-finishing kernel (one ranking pass + lockstep
  batched descent per level) produces a tree bit-identical to the
  per-pair finish (checked on the 200-sink blockage scenario every run)
  and, at 1000+ blockage sinks, ``route_finish_speedups`` rows are
  recorded with the batched kernel no slower than the per-pair finish;
- the lockstep profile-expansion scheduler (grouped curve rounds + run
  extension + masked insertion sub-rounds across every pair of a level)
  produces a tree bit-identical to the per-pair lazy expansion (checked
  on the 200-sink blockage scenario every run) and, at 1000+ blockage
  sinks, ``expansion_speedups`` rows are recorded with the scheduler no
  slower than the per-pair fallback;
- the structure-of-arrays tree mirror produces a tree bit-identical to
  the per-object commit fallback (checked on the 200-sink blockage
  scenario every run) and, at 1000+ sinks, ``soa_commit_speedups`` rows
  are recorded with the mirror no slower than the object walks — and at
  least 1.5x faster on the 4000-sink blockage acceptance scenario.
"""

import os

from conftest import report

from repro.evalx.perfstats import (
    PARALLEL_WORKERS,
    batch_finish_equivalence,
    batched_equivalence,
    checkpoint_resume_equivalence,
    collect_scaling,
    expansion_equivalence,
    parallel_equivalence,
    render_scaling,
    scaling_sizes,
    shared_equivalence,
    soa_commit_equivalence,
    write_scaling_json,
)


def test_perf_scaling():
    payload = collect_scaling()
    path = write_scaling_json(payload)
    report("perf_scaling", render_scaling(payload))
    assert path.exists() and path.stat().st_size > 0

    samples = payload["samples"]
    assert samples, "no scenarios ran"
    assert all(s["seconds"] > 0 for s in samples)
    # Both blockage modes covered at every size in the ladder.
    sizes = sorted(set(scaling_sizes()))
    ran = {(s["n_sinks"], s["blockages"]) for s in samples}
    assert {(n, b) for n in sizes for b in (False, True)} <= ran

    for row in payload["speedups"]:
        if row["speedup"] is None:
            continue
        if row["n_sinks"] >= 200:
            assert row["speedup"] > 1.0, row
        if row["n_sinks"] == 1000 and row["blockages"]:
            assert row["speedup"] >= 10.0, (
                "acceptance scenario regressed below 10x: "
                f"{row['speedup']:.1f}x"
            )

    # Parallel rows: identical trees are asserted separately (below);
    # here the shape claim is that the rows exist for every 1000+ size
    # and, when the host actually has the cores, that the 4000-sink
    # blockage scenario beats serial.
    par_rows = {(r["n_sinks"], r["blockages"]): r for r in payload["parallel_speedups"]}
    for n in sizes:
        if n >= 1000:
            assert (n, False) in par_rows and (n, True) in par_rows
    many_cores = (os.cpu_count() or 1) > PARALLEL_WORKERS
    acceptance = par_rows.get((4000, True))
    if acceptance is not None and many_cores:
        assert acceptance["speedup"] > 1.0, (
            "parallel merge routing slower than serial on the 4000-sink "
            f"blockage scenario: {acceptance['speedup']:.2f}x"
        )

    # Batched commit rows exist for every 1000+ size, record real commit
    # wall-clock, and the lockstep path never loses to its own scalar
    # fallback on the blockage scenarios (the acceptance comparison;
    # measured multiples are recorded in the JSON for the trajectory).
    commit_rows = {
        (r["n_sinks"], r["blockages"]): r for r in payload["commit_speedups"]
    }
    for n in sizes:
        if n >= 1000:
            assert (n, False) in commit_rows and (n, True) in commit_rows
    for (n, blocked), row in commit_rows.items():
        assert row["scalar_commit_s"] > 0 and row["batched_commit_s"] > 0
        assert row["batch_rounds"] > 0, "lockstep scheduler never engaged"
        if blocked:
            # Measured 1.3-1.5x on a quiet machine; the bar is the
            # noise-tolerant regression guard (sub-second intervals on
            # shared hosts swing tens of percent), the JSON rows carry
            # the actual trajectory.
            assert row["commit_speedup"] >= 1.0, (
                f"batched commit lost to the scalar fallback at {n} sinks: "
                f"{row['commit_speedup']:.2f}x"
            )

    # SoA-commit rows exist for every 1000+ size, record real commit
    # wall-clock, and the mirror never loses to the per-object walks —
    # with a hard 1.5x floor on the 4000-sink blockage acceptance
    # scenario when the host has real cores to keep the timer honest
    # (same gate as the parallel acceptance above: measured 1.2-1.4x
    # on a loaded single-core VM where sub-second intervals swing tens
    # of percent; the JSON rows carry the actual trajectory either way).
    soa_rows = {
        (r["n_sinks"], r["blockages"]): r
        for r in payload["soa_commit_speedups"]
    }
    for n in sizes:
        if n >= 1000:
            assert (n, False) in soa_rows and (n, True) in soa_rows
    for (n, blocked), row in soa_rows.items():
        assert row["object_commit_s"] > 0 and row["soa_commit_s"] > 0
        if blocked:
            assert row["soa_commit_speedup"] >= 1.0, (
                f"SoA commit lost to the object walks at {n} sinks: "
                f"{row['soa_commit_speedup']:.2f}x"
            )
    soa_acceptance = soa_rows.get((4000, True))
    if soa_acceptance is not None and many_cores:
        assert soa_acceptance["soa_commit_speedup"] >= 1.5, (
            "SoA commit below the 1.5x floor on the 4000-sink blockage "
            f"scenario: {soa_acceptance['soa_commit_speedup']:.2f}x"
        )

    # Shared-window rows exist for every 1000+ size, the subsystem
    # actually engaged, and the shared path never loses to its own
    # per-pair fallback on the blockage scenarios (the acceptance
    # comparison; measured ~1.2x at 1000 sinks on a quiet machine).
    route_rows = {
        (r["n_sinks"], r["blockages"]): r for r in payload["route_speedups"]
    }
    for n in sizes:
        if n >= 1000:
            assert (n, False) in route_rows and (n, True) in route_rows
    for (n, blocked), row in route_rows.items():
        assert row["per_pair_route_s"] > 0 and row["shared_route_s"] > 0
        if blocked:
            assert row["windows_served"] > 0, "shared windows never engaged"
            assert row["route_speedup"] >= 1.0, (
                f"shared-window routing lost to per-pair windows at {n} "
                f"sinks: {row['route_speedup']:.2f}x"
            )

    # Route-finishing rows exist for every 1000+ size on the blockage
    # ladder (the no-blockage ladder has no maze candidates to rank),
    # the kernel actually engaged, and the batched finish never loses to
    # its own per-pair fallback (the acceptance comparison; measured
    # multiples are recorded in the JSON for the trajectory).
    finish_rows = {
        (r["n_sinks"], r["blockages"]): r
        for r in payload["route_finish_speedups"]
    }
    for n in sizes:
        if n >= 1000:
            assert (n, True) in finish_rows
    for (n, __), row in finish_rows.items():
        assert row["per_pair_finish_route_s"] > 0
        assert row["batched_finish_route_s"] > 0
        assert row["finish_batches"] > 0, "finishing kernel never engaged"
        assert row["cells_ranked"] > 0
        assert row["route_finish_speedup"] >= 1.0, (
            f"batched route finishing lost to the per-pair fallback at {n} "
            f"sinks: {row['route_finish_speedup']:.2f}x"
        )

    # Lockstep-expansion rows exist for every 1000+ size on the blockage
    # ladder, the scheduler actually engaged, and it never loses to its
    # own per-pair fallback (the acceptance comparison; measured ~1.4x
    # at 1000 sinks and ~1.6x at 4000 on a quiet machine — the JSON rows
    # carry the actual multiples for the trajectory).
    expansion_rows = {
        (r["n_sinks"], r["blockages"]): r
        for r in payload["expansion_speedups"]
    }
    for n in sizes:
        if n >= 1000:
            assert (n, True) in expansion_rows
    for (n, __), row in expansion_rows.items():
        assert row["per_pair_expansion_route_s"] > 0
        assert row["batched_expansion_route_s"] > 0
        assert row["expansion_lanes"] > 0, "expansion scheduler never engaged"
        assert row["expansion_runs"] > 0
        assert row["curve_points"] > 0
        assert row["expansion_speedup"] >= 1.0, (
            f"lockstep profile expansion lost to the per-pair fallback at "
            f"{n} sinks: {row['expansion_speedup']:.2f}x"
        )


def test_parallel_matches_serial():
    """Parallel flow is bit-identical to serial on the 200-sink scenario."""
    payload = parallel_equivalence(n_sinks=200, with_blockages=True)
    assert payload["serial_tree"] == payload["parallel_tree"]
    assert payload["serial_stats"] == payload["parallel_stats"]
    assert payload["serial_levels"] == payload["parallel_levels"]


def test_shared_windows_match_per_pair():
    """Shared-window routing is bit-identical to per-pair windows (200
    sinks, serial); the shared side actually exercised the tile cache."""
    payload = shared_equivalence(n_sinks=200, with_blockages=True)
    assert payload["shared_tree"] == payload["per_pair_tree"]
    assert payload["shared_stats"] == payload["per_pair_stats"]
    assert payload["shared_levels"] == payload["per_pair_levels"]
    assert payload["shared_sharing"]["windows_served"] > 0
    assert payload["per_pair_sharing"]["windows_served"] == 0


def test_batched_finish_matches_per_pair():
    """The level-batched route-finishing kernel is bit-identical to the
    per-pair finish (200 sinks, shared windows on both sides); the
    batched side actually ranked and descended level-wide."""
    payload = batch_finish_equivalence(n_sinks=200, with_blockages=True)
    assert payload["batched_tree"] == payload["per_pair_tree"]
    assert payload["batched_stats"] == payload["per_pair_stats"]
    assert payload["batched_levels"] == payload["per_pair_levels"]
    assert payload["batched_sharing"]["finish_batches"] > 0
    assert payload["batched_sharing"]["cells_ranked"] > 0
    assert payload["per_pair_sharing"]["finish_batches"] == 0
    # Both sides routed the same pairs through the same shared windows.
    for key in ("pairs_routed", "windows_served", "curve_points"):
        assert payload["batched_sharing"][key] == payload["per_pair_sharing"][key]


def test_batched_expansion_matches_per_pair():
    """The lockstep profile-expansion scheduler is bit-identical to the
    per-pair lazy expansion (200 sinks, shared windows + batched finish
    on both sides); the scheduler actually ran grouped lanes."""
    payload = expansion_equivalence(n_sinks=200, with_blockages=True)
    assert payload["batched_tree"] == payload["per_pair_tree"]
    assert payload["batched_stats"] == payload["per_pair_stats"]
    assert payload["batched_levels"] == payload["per_pair_levels"]
    assert payload["batched_sharing"]["expansion_lanes"] > 0
    assert payload["batched_sharing"]["expansion_runs"] > 0
    assert payload["per_pair_sharing"]["expansion_lanes"] == 0
    # Only the scheduler primes tables in grouped rounds; the per-pair
    # side evaluates curves lazily inside the builders and counts none.
    assert payload["batched_sharing"]["curve_points"] > 0
    assert payload["per_pair_sharing"]["curve_points"] == 0
    # Both sides routed the same pairs through the same shared windows.
    for key in ("pairs_routed", "windows_served"):
        assert payload["batched_sharing"][key] == payload["per_pair_sharing"][key]


def test_checkpoint_resume_matches_clean():
    """A synthesis killed at a level boundary and resumed from its
    checkpoint is bit-identical to an uninterrupted run (200 sinks)."""
    payload = checkpoint_resume_equivalence(n_sinks=200, with_blockages=True)
    assert payload["clean_tree"] == payload["resumed_tree"]
    assert payload["clean_stats"] == payload["resumed_stats"]
    assert payload["clean_levels"] == payload["resumed_levels"]
    assert payload["resumed_from"] == 2
    assert payload["checkpoints_written"] == 2


def test_soa_commit_matches_object():
    """The structure-of-arrays tree mirror is bit-identical to the
    per-object commit fallback (200 sinks); both sides answer the same
    probe sequences."""
    payload = soa_commit_equivalence(n_sinks=200, with_blockages=True)
    assert payload["soa_tree"] == payload["object_tree"]
    assert payload["soa_stats"] == payload["object_stats"]
    assert payload["soa_levels"] == payload["object_levels"]
    soa_q, obj_q = payload["soa_queries"], payload["object_queries"]
    for key in ("search_probes", "clamp_probes", "repair_probes", "reused_checks"):
        assert soa_q[key] == obj_q[key]


def test_batched_commit_matches_scalar():
    """Batched commit is bit-identical to the scalar fallback (200 sinks)."""
    payload = batched_equivalence(n_sinks=200, with_blockages=True)
    assert payload["scalar_tree"] == payload["batched_tree"]
    assert payload["scalar_stats"] == payload["batched_stats"]
    assert payload["scalar_levels"] == payload["batched_levels"]
    # Both drivers issue the same probe sequences; only the batched one
    # answers them in vectorized lockstep rounds.
    scalar_q, batched_q = payload["scalar_queries"], payload["batched_queries"]
    for key in ("search_probes", "clamp_probes", "repair_probes", "reused_checks"):
        assert scalar_q[key] == batched_q[key]
    assert scalar_q["batched_rounds"] == 0
    assert batched_q["batched_rounds"] > 0
