"""Extension — process-variation Monte Carlo on a synthesized tree.

Beyond the paper (its related work [13-16] motivates variation-tolerant
CTS): quantify how the synthesized tree's skew degrades under within-die
variation of buffer strength and wire RC, and how die-to-die variation
moves latency but not skew.
"""

import pytest

from conftest import DEFAULT_SCALE, report

from repro.benchio import gsrc_instance
from repro.core import AggressiveBufferedCTS
from repro.evalx import format_table
from repro.evalx.variation import VariationModel, monte_carlo_skew
from repro.evalx.harness import scale_instance
from repro.tech import default_technology

MODELS = {
    "nominal": VariationModel(0.0, 0.0, 0.0, 0.0, seed=2),
    "local 5%": VariationModel(0.05, 0.05, 0.03, 0.0, seed=2),
    "local 10%": VariationModel(0.10, 0.08, 0.05, 0.0, seed=2),
    "local 5% + global 10%": VariationModel(0.05, 0.05, 0.03, 0.10, seed=2),
}


def test_ablation_variation(benchmark):
    tech = default_technology()
    inst = scale_instance(gsrc_instance("r1"), scale=min(DEFAULT_SCALE, 20))
    cts = AggressiveBufferedCTS(tech=tech)
    result = cts.synthesize(inst.sink_pairs(), inst.source)

    def run_all():
        return {
            name: monte_carlo_skew(result.tree, tech, model, n_samples=6, dt=2e-12)
            for name, model in MODELS.items()
        }

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [
            name,
            mc.nominal_skew * 1e12,
            mc.mean_skew * 1e12,
            mc.p95_skew * 1e12,
            mc.sigma_latency * 1e12,
        ]
        for name, mc in runs.items()
    ]
    report(
        "ablation_variation",
        format_table(
            ["variation model", "nominal skew", "mean skew", "p95 skew", "sigma(lat)"],
            rows,
            title="Extension — Monte Carlo skew under process variation (ps)",
        ),
    )
    nominal = runs["nominal"]
    local10 = runs["local 10%"]
    both = runs["local 5% + global 10%"]
    # Local variation inflates skew; stronger sigma inflates it more.
    assert local10.mean_skew > nominal.mean_skew
    assert runs["local 5%"].mean_skew <= local10.mean_skew * 1.2
    # The global term dominates latency spread.
    assert both.sigma_latency > runs["local 5%"].sigma_latency
