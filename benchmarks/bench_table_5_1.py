"""Table 5.1 — GSRC benchmarks: ours vs merge-node-only baselines.

Shape claims reproduced (DESIGN.md):
- worst simulated slew never exceeds the 100 ps limit;
- skew stays a small fraction of latency;
- the merge-node-only baselines ([6]/[8]/[16]-style reimplementations)
  violate slew under the 10X-stressed wire parasitics, which is the
  paper's motivation for path buffering.
"""

import pytest

from conftest import DEFAULT_SCALE, EVAL_DT, report

from repro.benchio import gsrc_suite
from repro.evalx import paper_data, render_table_5_1
from repro.evalx.harness import (
    full_run_requested,
    run_aggressive,
    run_merge_buffer,
    scale_instance,
)
from repro.tech import default_technology


def _gsrc_instances():
    suite = gsrc_suite()
    if not full_run_requested():
        suite = suite[:3]  # r1-r3 by default; REPRO_FULL=1 runs all five
    return [scale_instance(inst, scale=DEFAULT_SCALE) for inst in suite]


def test_table_5_1(benchmark):
    instances = _gsrc_instances()
    runs = {}

    def synthesize_all():
        return [run_aggressive(inst, eval_dt=EVAL_DT) for inst in instances]

    results = benchmark.pedantic(synthesize_all, rounds=1, iterations=1)
    rows = []
    for inst, run in zip(instances, results):
        base = inst.name.split("@")[0]
        paper = paper_data.TABLE_5_1[base]
        row = run.row()
        row.update(
            paper_worst_slew_ps=paper["worst_slew"],
            paper_skew_ps=paper["skew"],
            paper_latency_ns=paper["latency_ns"],
        )
        for policy, key in (
            ("chen-wong96", "ref6"),
            ("chaturvedi-hu04", "ref8"),
            ("rajaram-pan06", "ref16"),
        ):
            metrics = run_merge_buffer(inst, policy, eval_dt=EVAL_DT)
            row[f"{key}_skew_ps"] = metrics.skew * 1e12
            row[f"{key}_worst_slew_ps"] = metrics.worst_slew * 1e12
            row[f"paper_{key}_skew_ps"] = paper[f"skew_{key}"]
        # The same baseline under 1X parasitics — the regime [6,8,16]
        # actually published in, where merge-node buffering is viable.
        tech_1x = default_technology(wire_scale=1.0)
        metrics_1x = run_merge_buffer(
            inst, "chaturvedi-hu04", tech=tech_1x, eval_dt=EVAL_DT
        )
        row["ref8_1x_skew_ps"] = metrics_1x.skew * 1e12
        row["ref8_1x_worst_slew_ps"] = metrics_1x.worst_slew * 1e12
        rows.append(row)
        runs[base] = (run, row)

    report("table_5_1", render_table_5_1(rows))

    for base, (run, row) in runs.items():
        # Hard slew constraint honored by simulation.
        assert row["worst_slew_ps"] <= paper_data.SLEW_LIMIT_PS, base
        # Skew is a small fraction of latency (paper: ~2-5%).
        assert row["skew_ps"] * 1e-3 <= 0.08 * row["latency_ns"], base
        # The merge-node-only baselines violate slew under 10X parasitics.
        baseline_slews = [row["ref6_worst_slew_ps"], row["ref8_worst_slew_ps"],
                          row["ref16_worst_slew_ps"]]
        assert max(baseline_slews) > paper_data.SLEW_LIMIT_PS, base
