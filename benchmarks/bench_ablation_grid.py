"""Ablation A1 — routing grid resolution R.

The paper defaults to R = 45 cells per dimension and grows the grid for
long nets so enough buffer locations exist. Coarser grids quantize buffer
positions harder (worse slew utilization, possibly worse skew); finer
grids cost runtime. Slew must hold at every resolution.
"""

import pytest

from conftest import DEFAULT_SCALE, EVAL_DT, report

from repro.benchio import gsrc_instance
from repro.core.options import CTSOptions
from repro.evalx import format_table, paper_data
from repro.evalx.harness import run_aggressive, scale_instance

RESOLUTIONS = (12, 45, 90)


def test_ablation_grid_resolution(benchmark):
    inst = scale_instance(gsrc_instance("r1"), scale=DEFAULT_SCALE)

    def run_all():
        out = {}
        for r in RESOLUTIONS:
            options = CTSOptions(grid_resolution=r)
            out[r] = run_aggressive(inst, options=options, eval_dt=EVAL_DT)
        return out

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [
            f"R={r}",
            run.metrics.worst_slew * 1e12,
            run.metrics.skew * 1e12,
            run.metrics.n_buffers,
            round(run.synthesis.runtime, 2),
        ]
        for r, run in runs.items()
    ]
    report(
        "ablation_grid",
        format_table(
            ["resolution", "slew[ps]", "skew[ps]", "buffers", "synth[s]"],
            rows,
            title="Ablation — routing grid resolution (r1-scaled)",
        ),
    )
    for r, run in runs.items():
        assert run.metrics.worst_slew * 1e12 <= paper_data.SLEW_LIMIT_PS, r
