"""Table 5.2 — ISPD 2009 benchmarks (large areas, hard slew control).

Shape claims: slew bounded on every benchmark; "all skews are within 3%
of maximum latency" (we allow a little margin on the reduced default
instances); latency ordering follows chip area.
"""

import pytest

from conftest import DEFAULT_SCALE, EVAL_DT, report

from repro.benchio import ispd_suite
from repro.evalx import paper_data, render_table_5_2
from repro.evalx.harness import full_run_requested, run_aggressive, scale_instance


def _ispd_instances():
    suite = ispd_suite()
    if not full_run_requested():
        keep = {"f11", "f22", "f32"}
        suite = [inst for inst in suite if inst.name in keep]
    return [scale_instance(inst, scale=DEFAULT_SCALE) for inst in suite]


def test_table_5_2(benchmark):
    instances = _ispd_instances()

    def synthesize_all():
        return [run_aggressive(inst, eval_dt=EVAL_DT) for inst in instances]

    results = benchmark.pedantic(synthesize_all, rounds=1, iterations=1)
    rows = []
    for inst, run in zip(instances, results):
        base = inst.name.split("@")[0]
        paper = paper_data.TABLE_5_2[base]
        row = run.row()
        row.update(
            paper_worst_slew_ps=paper["worst_slew"],
            paper_skew_ps=paper["skew"],
            paper_latency_ns=paper["latency_ns"],
            skew_over_latency_pct=100.0 * run.metrics.skew / run.metrics.latency,
        )
        rows.append(row)

    report("table_5_2", render_table_5_2(rows))

    for row in rows:
        assert row["worst_slew_ps"] <= paper_data.SLEW_LIMIT_PS, row["bench"]
        assert row["skew_over_latency_pct"] <= 6.0, row["bench"]
    # Latency ordering follows die size: f22 (smallest) < f32 < f11-like.
    by_name = {row["bench"].split("@")[0]: row for row in rows}
    if "f22" in by_name and "f32" in by_name:
        assert by_name["f22"]["latency_ns"] < by_name["f32"]["latency_ns"]
