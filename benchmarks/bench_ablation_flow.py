"""Ablations A2/A3 — binary search and balance stages on/off.

DESIGN.md's design-choice ablations: disabling the binary-search stage or
the balance stage must not break the slew constraint (slew control lives
in the routing/insertion logic) but degrades skew.
"""

import pytest

from conftest import DEFAULT_SCALE, EVAL_DT, report

from repro.benchio import gsrc_instance
from repro.core.options import CTSOptions
from repro.evalx import format_table, paper_data
from repro.evalx.harness import run_aggressive, scale_instance

VARIANTS = {
    "full": CTSOptions(),
    "no-binary-search": CTSOptions(enable_binary_search=False),
    "no-balance": CTSOptions(enable_balance=False),
    "neither": CTSOptions(enable_binary_search=False, enable_balance=False),
}


def test_ablation_flow_stages(benchmark):
    inst = scale_instance(gsrc_instance("r2"), scale=DEFAULT_SCALE)

    def run_all():
        return {
            name: run_aggressive(inst, options=options, eval_dt=EVAL_DT)
            for name, options in VARIANTS.items()
        }

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [
            name,
            run.metrics.worst_slew * 1e12,
            run.metrics.skew * 1e12,
            run.metrics.latency * 1e9,
            run.metrics.n_buffers,
        ]
        for name, run in runs.items()
    ]
    report(
        "ablation_flow",
        format_table(
            ["variant", "slew[ps]", "skew[ps]", "lat[ns]", "buffers"],
            rows,
            title="Ablation — balance / binary-search stages (r2-scaled)",
        ),
    )

    for name, run in runs.items():
        assert run.metrics.worst_slew * 1e12 <= paper_data.SLEW_LIMIT_PS, name
    # The full flow must beat the fully ablated one on skew.
    assert runs["full"].metrics.skew <= runs["neither"].metrics.skew
