"""Ablation A6 — profile router vs general maze router.

Without blockages the two routers implement the same algorithm on the
same profiles; the profile router exploits the uniform medium for speed.
Equivalence of the synthesized-tree quality and the runtime gap are both
measured here.
"""

import pytest

from conftest import DEFAULT_SCALE, EVAL_DT, report

from repro.benchio import gsrc_instance
from repro.core.options import CTSOptions
from repro.evalx import format_table, paper_data
from repro.evalx.harness import run_aggressive, scale_instance


def test_ablation_router(benchmark):
    inst = scale_instance(gsrc_instance("r1"), scale=min(DEFAULT_SCALE, 30))

    def run_both():
        return {
            name: run_aggressive(
                inst, options=CTSOptions(router=name), eval_dt=EVAL_DT
            )
            for name in ("profile", "maze")
        }

    runs = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        [
            name,
            run.metrics.worst_slew * 1e12,
            run.metrics.skew * 1e12,
            run.metrics.n_buffers,
            round(run.synthesis.runtime, 2),
        ]
        for name, run in runs.items()
    ]
    report(
        "ablation_router",
        format_table(
            ["router", "slew[ps]", "skew[ps]", "buffers", "synth[s]"],
            rows,
            title="Ablation — profile vs maze router (r1-scaled, no blockages)",
        ),
    )
    prof, maze = runs["profile"], runs["maze"]
    assert prof.metrics.worst_slew * 1e12 <= paper_data.SLEW_LIMIT_PS
    assert maze.metrics.worst_slew * 1e12 <= paper_data.SLEW_LIMIT_PS
    # Equivalent quality (same insertion logic, grid-quantum differences).
    assert maze.metrics.n_buffers == pytest.approx(prof.metrics.n_buffers, rel=0.25)
    # The profile router must be substantially faster.
    assert prof.synthesis.runtime < maze.synthesis.runtime
