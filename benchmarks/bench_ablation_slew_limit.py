"""Extension — slew-limit sweep.

How the flow trades buffers/latency for slew headroom: tighter limits
force shorter stages (more buffers, deeper trees); looser limits relax
them. Every point must honor its own limit under simulation.
"""

import pytest

from conftest import DEFAULT_SCALE, EVAL_DT, report

from repro.benchio import gsrc_instance
from repro.core.options import CTSOptions
from repro.evalx import format_table
from repro.evalx.harness import run_aggressive, scale_instance

LIMITS_PS = (70.0, 100.0, 150.0)


def test_ablation_slew_limit(benchmark):
    inst = scale_instance(gsrc_instance("r1"), scale=min(DEFAULT_SCALE, 30))

    def run_all():
        out = {}
        for limit in LIMITS_PS:
            options = CTSOptions(slew_limit=limit * 1e-12)
            out[limit] = run_aggressive(inst, options=options, eval_dt=EVAL_DT)
        return out

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [
            f"{limit:.0f} ps",
            run.metrics.worst_slew * 1e12,
            run.metrics.skew * 1e12,
            run.metrics.latency * 1e9,
            run.metrics.n_buffers,
        ]
        for limit, run in runs.items()
    ]
    report(
        "ablation_slew_limit",
        format_table(
            ["slew limit", "worst slew[ps]", "skew[ps]", "lat[ns]", "buffers"],
            rows,
            title="Extension — slew-limit sweep (r1-scaled)",
        ),
    )
    for limit, run in runs.items():
        assert run.metrics.worst_slew * 1e12 <= limit, f"{limit} ps run violated"
    # Tighter limit -> more buffers.
    assert runs[70.0].metrics.n_buffers > runs[150.0].metrics.n_buffers
