"""Fig. 3.2 — curve vs ramp input of equal measured slew.

Shape claim: two inputs with identical 10-90% slew (150 ps) but different
shapes (real buffer-output curve vs ideal ramp) shift the downstream
buffer output by tens of ps (paper: ~32 ps) — so ramp-based closed-form
delay metrics cannot reach SPICE accuracy, motivating the characterized
library with realistic input waveforms.
"""

import pytest

from conftest import report

from repro.evalx import fig_3_2_experiment, format_table, paper_data


def test_fig_3_2(benchmark):
    result = benchmark.pedantic(fig_3_2_experiment, rounds=1, iterations=1)
    table = format_table(
        ["quantity", "value [ps]"],
        [
            ["input slew (both shapes)", result.input_slew * 1e12],
            ["delay, ramp input (50-50)", result.ramp_delay * 1e12],
            ["delay, curve input (50-50)", result.curve_delay * 1e12],
            ["output shift (inputs aligned at 10%)", result.output_shift * 1e12],
            ["residual 50-50 delay difference", result.delay_difference_5050 * 1e12],
            ["paper output shift", paper_data.FIG_3_2["output_shift_ps"]],
        ],
        title="Fig 3.2 — curve vs ramp transient difference",
    )
    report("fig_3_2", table)

    # The shift is significant (tens of ps), same order as the paper's 32:
    # modeling a real curve as an equal-slew ramp mispredicts absolute
    # timing substantially.
    assert result.output_shift > 10e-12
    assert result.output_shift < 90e-12
    # Even with per-waveform 50% alignment a residual shape error remains.
    assert result.delay_difference_5050 > 0.5e-12
    # Output slews stay comparable: the effect is a *shift*, not a slew
    # artifact.
    assert result.output_slew_curve == pytest.approx(
        result.output_slew_ramp, rel=0.25
    )
