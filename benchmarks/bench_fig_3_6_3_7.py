"""Figs. 3.6/3.7 — branch wire-delay hyperplane fits.

Shape claims: the multi-variable polynomial ("hyperplane") fits over
(input slew, stem, left/right length, left/right cap) track simulated
left- and right-branch wire delays; the left-branch delay depends on the
*right* branch too (shared driver) — the coupling the fits must capture.
"""

import pytest

from conftest import report

from repro.charlib import load_default_library
from repro.evalx import fig_3_6_3_7_rows, format_table


def test_fig_3_6_3_7(benchmark, tech):
    rows = benchmark.pedantic(
        lambda: fig_3_6_3_7_rows(validate_points=6), rounds=1, iterations=1
    )
    table = format_table(
        ["figure", "drive", "function", "train rms", "R^2", "val mean", "val max"],
        [
            [
                r["figure"], r["drive"], r["function"], r["train_rms_ps"],
                round(r["r_squared"], 5), r["validate_mean_ps"], r["validate_max_ps"],
            ]
            for r in rows
        ],
        title="Figs 3.6/3.7 — branch wire delay fits (ps)",
    )
    report("fig_3_6_3_7", table)

    for row in rows:
        assert row["train_rms_ps"] < 2.5, row
        assert row["r_squared"] > 0.99, row
        assert row["validate_mean_ps"] < 5.0, row

    # Cross-branch coupling (Fig. 3.6's defining feature): lengthening the
    # RIGHT branch increases the LEFT branch's wire delay.
    library = load_default_library(tech)
    short = library.branch_component("BUF20X", 80e-12, 0.0, 1500.0, 300.0, 8e-15, 8e-15)
    long = library.branch_component("BUF20X", 80e-12, 0.0, 1500.0, 2800.0, 8e-15, 8e-15)
    assert long.left_delay > short.left_delay
