"""Ablation A4 — delay-model accuracy ladder (Ch. 3's argument, measured).

Estimates the latency/skew of one synthesized tree with three models and
compares each against the mini-SPICE ground truth:

- Elmore (first moment) on the RC tree with switch-resistor buffers;
- D2M/PERI moment metrics on the same RC tree;
- the characterized library engine (the paper's approach).

Shape claim: Elmore overestimates badly; moment metrics improve; the
library engine is the only one within a few percent — the quantitative
version of Sec. 3.1.
"""

import pytest

from conftest import DEFAULT_SCALE, EVAL_DT, report

from repro.benchio import gsrc_instance
from repro.charlib import load_default_library
from repro.core import AggressiveBufferedCTS
from repro.evalx import engine_metrics, evaluate_tree, format_table
from repro.evalx.harness import scale_instance
from repro.tech import default_technology
from repro.timing.analysis import LibraryTimingEngine
from repro.timing.moments import d2m_delay, rc_tree_moments
from repro.timing.elmore import elmore_delays
from repro.timing.rctree import RCTree
from repro.tree.nodes import NodeKind


def _rc_model_latency(tree, tech) -> dict:
    """Per-stage Elmore and D2M latency with switch-resistor buffers.

    Applied the standard way: each buffered stage is an RC tree driven
    through the buffer's effective switching resistance; stage delays
    accumulate along the paths. What the linear model misses — and what
    Ch. 3 is about — is the slew-dependence of buffer delay and the real
    waveform shapes; the error below quantifies that.
    """

    def stage_delays(stage_root) -> dict[int, dict[str, float]]:
        """Model delays from this stage's input to each stage load."""
        driver_r = (
            stage_root.buffer.drive_resistance(tech)
            if stage_root.kind is NodeKind.BUFFER
            else 0.0
        )
        rc = RCTree("in", driver_resistance=driver_r)
        loads: list[tuple[int, str]] = []

        def build(node, parent_name):
            name = f"n{node.id}"
            if node.wire_to_parent > 0:
                rc.add_wire(parent_name, name, node.wire_to_parent, tech.wire, 4)
            else:
                rc.add_node(name, parent_name, 1e-3, 0.0)
            if node.kind is NodeKind.SINK:
                rc.add_cap(name, node.cap)
                loads.append((node.id, name))
            elif node.kind is NodeKind.BUFFER:
                rc.add_cap(name, node.buffer.input_cap(tech))
                loads.append((node.id, name))
            else:
                for child in node.children:
                    build(child, name)

        for child in stage_root.children:
            build(child, "in")
        elmore = elmore_delays(rc)
        moments = rc_tree_moments(rc, order=2)
        out = {}
        for node_id, name in loads:
            out[node_id] = {
                "elmore": elmore[name],
                "d2m": d2m_delay(abs(moments[name][0]), abs(moments[name][1])),
            }
        return out

    latencies = {"elmore": 0.0, "d2m": 0.0}
    queue = [(tree.root, 0.0, 0.0)]  # (stage root, elmore arrival, d2m arrival)
    nodes_by_id = {n.id: n for n in tree.root.walk()}
    while queue:
        stage_root, arr_e, arr_d = queue.pop()
        for node_id, delays in stage_delays(stage_root).items():
            node = nodes_by_id[node_id]
            e = arr_e + delays["elmore"]
            d = arr_d + delays["d2m"]
            if node.kind is NodeKind.SINK:
                latencies["elmore"] = max(latencies["elmore"], e)
                latencies["d2m"] = max(latencies["d2m"], d)
            else:
                queue.append((node, e, d))
    return latencies


def test_ablation_models(benchmark):
    tech = default_technology()
    inst = scale_instance(gsrc_instance("r1"), scale=min(DEFAULT_SCALE, 24))
    cts = AggressiveBufferedCTS(tech=tech)
    result = cts.synthesize(inst.sink_pairs(), inst.source)
    spice = evaluate_tree(result.tree, tech, dt=EVAL_DT)

    def estimate_all():
        rc = _rc_model_latency(result.tree, tech)
        engine = LibraryTimingEngine(load_default_library(tech), tech)
        lib = engine_metrics(result.tree, engine)
        return rc, lib

    (rc, lib) = benchmark.pedantic(estimate_all, rounds=1, iterations=1)
    rows = [
        ["mini-SPICE (truth)", spice.latency * 1e9, 0.0],
        ["library engine", lib.latency * 1e9,
         100 * abs(lib.latency - spice.latency) / spice.latency],
        ["D2M + switch-R buffers", rc["d2m"] * 1e9,
         100 * abs(rc["d2m"] - spice.latency) / spice.latency],
        ["Elmore + switch-R buffers", rc["elmore"] * 1e9,
         100 * abs(rc["elmore"] - spice.latency) / spice.latency],
    ]
    report(
        "ablation_models",
        format_table(
            ["model", "latency [ns]", "error vs SPICE [%]"],
            rows,
            title="Ablation — delay model accuracy ladder (r1-scaled tree)",
        ),
    )
    lib_err = abs(lib.latency - spice.latency) / spice.latency
    d2m_err = abs(rc["d2m"] - spice.latency) / spice.latency
    elm_err = abs(rc["elmore"] - spice.latency) / spice.latency
    assert lib_err < 0.10, "library engine should be within 10%"
    assert lib_err < d2m_err, "library engine should beat moment metrics"
    assert lib_err < elm_err, "library engine should beat Elmore"
